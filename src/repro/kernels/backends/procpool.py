"""Supervised process-pool backend: chunked sweeps on the execution fabric.

``procpool`` runs the fused normal-equations pass on worker *processes*
supervised by :class:`repro.fabric.TaskSupervisor` instead of threads.
Each sweep broadcasts the mode's factors and core to the pool once (a
``SETUP`` frame, compacted in the replay log so long fits stay bounded);
each entry block is then split at segment boundaries — the same
:func:`~repro.kernels.backends.threaded.chunk_boundaries` geometry as the
``threaded`` backend — and the chunks are dispatched as fabric tasks.
Chunk results are concatenated in chunk order, and every worker builds
its contractor from the same broadcast ``expected_entries``, so the
``(B, c)`` stacks are bitwise identical to the serial reference whatever
the chunking, worker count, or mid-sweep worker deaths.

Compared to ``threaded`` this pays pickling (factors per sweep, entry
slices per chunk) to buy freedom from the GIL: on multicore hosts where
the per-segment ``reduceat`` bookkeeping between the GEMMs keeps threads
serialised, separate interpreters overlap fully.  It also inherits the
fabric's whole failure model — a worker SIGKILLed or hung mid-sweep is
respawned, the replay log restores its factors, and its chunk is
re-dispatched with no effect on the output.  With one effective worker
the backend degrades to the serial reference path and spawns nothing, so
single-CPU hosts (and CI) see neither process overhead nor a regression.

Worker count resolution: constructor override, else the
``REPRO_PROC_WORKERS`` environment variable, else the CPU count.
"""

from __future__ import annotations

import atexit
import os
import threading
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

import numpy as np

from ..contraction import make_delta_contractor
from ..segments import normal_equations_sorted
from .base import KernelBackend, NormalEquationsKernel
from .threaded import chunk_boundaries

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...fabric import TaskSupervisor

# repro.fabric is imported lazily (first use, never at module import):
# this module loads while the kernels package initialises, and the fabric
# pulls in repro.metrics, whose error helpers need the fully initialised
# tensor layer — an import cycle if resolved eagerly here.

#: Environment override for the worker-process count.
PROC_WORKERS_ENV = "REPRO_PROC_WORKERS"

#: Chunks smaller than this are not worth pickling across a process pipe
#: (4x the threaded backend's dispatch floor).
MIN_CHUNK_ENTRIES = 32_768

#: Chunks per worker: fewer than ``threaded`` uses — each dispatch ships
#: bytes, so balance is bought more cheaply by hedging than by fragments.
CHUNKS_PER_WORKER = 2

#: Generous per-chunk deadline; a healthy chunk finishes in milliseconds,
#: so only a truly wedged worker ever hits it.
TASK_DEADLINE_S = 300.0

_SUPERVISOR: Optional["TaskSupervisor"] = None
_SUPERVISOR_WORKERS = 0
_SUPERVISOR_LOCK = threading.Lock()


def default_workers() -> int:
    """Worker count: ``REPRO_PROC_WORKERS`` env override, else CPU count."""
    env = os.environ.get(PROC_WORKERS_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def shared_supervisor(n_workers: int) -> "TaskSupervisor":
    """The process-global fabric supervisor, regrown on bigger requests.

    Worker processes are expensive to spawn (interpreter + numpy import),
    so one supervised pool is kept for the process lifetime and shared by
    every ``procpool`` backend instance, exactly like the ``threaded``
    backend's thread pool.  A superseded smaller pool is shut down —
    unlike threads, orphan processes hold real memory.
    """
    from ...fabric import TaskSupervisor

    global _SUPERVISOR, _SUPERVISOR_WORKERS
    with _SUPERVISOR_LOCK:
        if _SUPERVISOR is None or _SUPERVISOR_WORKERS < n_workers:
            if _SUPERVISOR is not None:
                _SUPERVISOR.shutdown()
            _SUPERVISOR = TaskSupervisor(
                n_workers,
                task_deadline=TASK_DEADLINE_S,
                name="procpool",
            )
            _SUPERVISOR_WORKERS = n_workers
        return _SUPERVISOR


@atexit.register
def _shutdown_shared_supervisor() -> None:  # pragma: no cover - atexit
    global _SUPERVISOR
    with _SUPERVISOR_LOCK:
        if _SUPERVISOR is not None:
            _SUPERVISOR.shutdown()
            _SUPERVISOR = None


# ----------------------------------------------------------------------
# Worker-side callables (referenced by dotted path in fabric frames)
# ----------------------------------------------------------------------

def _setup_ne(context, payload):
    """Build this sweep's kernel from the broadcast factors, in-worker.

    Supersedes any previous sweep: older ``ne:`` setups and cache entries
    are dropped so worker memory stays bounded over long fits.  The
    contractor is built with the parent's ``expected_entries``, which
    pins the contraction plan — the precondition for chunk results being
    bitwise equal to the parent's serial reference.
    """
    for stale in [k for k in context.setups if str(k).startswith("ne:")]:
        del context.setups[stale]
    context.cache.clear()
    factors, core, mode, expected_entries = payload
    contractor = make_delta_contractor(factors, core, mode, expected_entries)

    def kernel(indices_block, values_block, starts):
        deltas = contractor(indices_block)
        return normal_equations_sorted(deltas, values_block, starts)

    return kernel


def _ne_chunk(context, payload):
    """Run one segment-aligned chunk through the sweep's kernel."""
    setup_key, indices_block, values_block, starts = payload
    kernel = context.setups[setup_key]
    return kernel(indices_block, values_block, starts)


# ----------------------------------------------------------------------

class ProcpoolBackend(KernelBackend):
    """Kernel backend dispatching segment-aligned chunks to fabric workers."""

    name = "procpool"

    #: Class-wide sweep counter: setup keys must be unique across instances
    #: because they all share one supervisor (and its one replay log).
    _sweep_counter = 0
    _sweep_lock = threading.Lock()

    def __init__(
        self,
        n_workers: Optional[int] = None,
        min_chunk_entries: int = MIN_CHUNK_ENTRIES,
        supervisor: Optional["TaskSupervisor"] = None,
    ) -> None:
        self._n_workers = None if n_workers is None else max(1, int(n_workers))
        self.min_chunk_entries = int(min_chunk_entries)
        self._supervisor = supervisor

    @property
    def n_workers(self) -> int:
        """Explicit worker count, else the current environment default."""
        if self._n_workers is not None:
            return self._n_workers
        return default_workers()

    def _get_supervisor(self) -> "TaskSupervisor":
        if self._supervisor is not None:
            return self._supervisor
        return shared_supervisor(self.n_workers)

    def _n_chunks(self, n_entries: int, n_segments: int) -> int:
        if self.n_workers <= 1:
            return 1
        by_size = n_entries // self.min_chunk_entries
        cap = max(self.n_workers * CHUNKS_PER_WORKER, 1)
        return max(1, min(by_size, cap, n_segments))

    # ------------------------------------------------------------------
    def make_normal_equations_kernel(
        self,
        factors: Sequence[np.ndarray],
        core: np.ndarray,
        mode: int,
        expected_entries: int,
    ) -> NormalEquationsKernel:
        if self.n_workers <= 1:
            # Nothing to overlap: serve the serial reference directly and
            # never spawn a process (the single-CPU / CI degradation).
            return super().make_normal_equations_kernel(
                factors, core, mode, expected_entries
            )
        from ...fabric import Task

        with ProcpoolBackend._sweep_lock:
            ProcpoolBackend._sweep_counter += 1
            setup_key = f"ne:{ProcpoolBackend._sweep_counter}"
        supervisor = self._get_supervisor()
        factors = [np.ascontiguousarray(f) for f in factors]
        supervisor.broadcast_setup(
            setup_key,
            "repro.kernels.backends.procpool:_setup_ne",
            (factors, np.asarray(core), mode, expected_entries),
            replace_prefix="ne:",
        )
        # Fallback for blocks below the dispatch floor (and a guarantee
        # that degradation can never change values).
        serial = super().make_normal_equations_kernel(
            factors, core, mode, expected_entries
        )

        def kernel(
            indices_block: np.ndarray,
            values_block: np.ndarray,
            starts: np.ndarray,
        ) -> Tuple[np.ndarray, np.ndarray]:
            n_entries = indices_block.shape[0]
            n_segments = starts.shape[0]
            n_chunks = self._n_chunks(n_entries, n_segments)
            if n_chunks <= 1:
                return serial(indices_block, values_block, starts)

            edges = chunk_boundaries(starts, n_entries, n_chunks)
            tasks = []
            for chunk in range(edges.shape[0] - 1):
                seg_lo, seg_hi = int(edges[chunk]), int(edges[chunk + 1])
                entry_lo = int(starts[seg_lo])
                entry_hi = (
                    int(starts[seg_hi]) if seg_hi < n_segments else n_entries
                )
                tasks.append(
                    Task(
                        key=chunk,
                        fn="repro.kernels.backends.procpool:_ne_chunk",
                        payload=(
                            setup_key,
                            indices_block[entry_lo:entry_hi],
                            values_block[entry_lo:entry_hi],
                            starts[seg_lo:seg_hi] - entry_lo,
                        ),
                    )
                )
            parts = supervisor.run_tasks(tasks)
            b_matrices = np.concatenate([part[0] for part in parts], axis=0)
            c_vectors = np.concatenate([part[1] for part in parts], axis=0)
            return b_matrices, c_vectors

        return kernel
