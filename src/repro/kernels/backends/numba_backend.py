"""Optional numba JIT backend: fused δ + Gram accumulation in compiled loops.

Importing this module requires ``numba``; the package ``__init__`` guards
the import so the backend registers only where the dependency exists and
the registry silently falls back to the NumPy reference elsewhere
(``pip install .[numba]`` adds it).

The jitted kernel is the paper's OpenMP loop transliterated: an outer
``prange`` over rows (independent by Section III-B), an inner walk over
the row's observed entries, and per entry a scan over the core's nonzero
cells accumulating δ, then ``B += δδᵀ`` and ``c += X·δ``.  Per-entry work
is O(N·|G|) scalar multiplies — worse asymptotically than the progressive
contraction, but with no interpreter dispatch and no temporaries, which is
the profitable trade exactly where the NumPy path is weakest: many short
row segments at small |G|.  The autotuner decides per shape class which
strategy wins; nothing is assumed.

Every loop reads the factor matrices and core in place — the S-HOT "never
materialise the unfolding" discipline carries over verbatim.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
import numba
from numba import njit, prange

from .base import KernelBackend, NormalEquationsKernel


@njit(cache=True, parallel=True)
def _fused_normal_equations(
    indices, values, starts, counts, factors, core_flat, core_shape, mode, rank
):  # pragma: no cover - compiled; exercised only where numba is installed
    n_segments = starts.shape[0]
    order = indices.shape[1]
    n_cells = core_flat.shape[0]
    b_matrices = np.zeros((n_segments, rank, rank), dtype=np.float64)
    c_vectors = np.zeros((n_segments, rank), dtype=np.float64)
    for segment in prange(n_segments):
        delta = np.empty(rank, dtype=np.float64)
        for entry in range(starts[segment], starts[segment] + counts[segment]):
            for j in range(rank):
                delta[j] = 0.0
            for cell in range(n_cells):
                weight = core_flat[cell]
                remainder = cell
                kept_index = 0
                # Unravel the C-order flat cell index, multiplying in the
                # matching factor entries as each mode peels off.
                for k in range(order - 1, -1, -1):
                    j_k = remainder % core_shape[k]
                    remainder //= core_shape[k]
                    if k == mode:
                        kept_index = j_k
                    else:
                        weight *= factors[k][indices[entry, k], j_k]
                delta[kept_index] += weight
            value = values[entry]
            for a in range(rank):
                delta_a = delta[a]
                c_vectors[segment, a] += value * delta_a
                for b in range(rank):
                    b_matrices[segment, a, b] += delta_a * delta[b]
    return b_matrices, c_vectors


@njit(cache=True, parallel=True)
def _delta_block(
    indices, factors, core_flat, core_shape, mode, rank
):  # pragma: no cover - compiled; exercised only where numba is installed
    n_entries = indices.shape[0]
    order = indices.shape[1]
    n_cells = core_flat.shape[0]
    deltas = np.zeros((n_entries, rank), dtype=np.float64)
    for entry in prange(n_entries):
        for cell in range(n_cells):
            weight = core_flat[cell]
            remainder = cell
            kept_index = 0
            for k in range(order - 1, -1, -1):
                j_k = remainder % core_shape[k]
                remainder //= core_shape[k]
                if k == mode:
                    kept_index = j_k
                else:
                    weight *= factors[k][indices[entry, k], j_k]
            deltas[entry, kept_index] += weight
    return deltas


def _as_uniform_tuple(factors: Sequence[np.ndarray]):
    """Factors as a tuple of C-contiguous float64 matrices (numba UniTuple)."""
    return tuple(
        np.ascontiguousarray(np.asarray(factor), dtype=np.float64)
        for factor in factors
    )


class NumbaBackend(KernelBackend):
    """Kernel backend running the fused row loop under ``@njit(parallel=True)``."""

    name = "numba"

    def make_normal_equations_kernel(
        self,
        factors: Sequence[np.ndarray],
        core: np.ndarray,
        mode: int,
        expected_entries: int,
    ) -> NormalEquationsKernel:
        core_arr = np.asarray(core, dtype=np.float64)
        core_flat = np.ascontiguousarray(core_arr.reshape(-1))
        core_shape = np.asarray(core_arr.shape, dtype=np.int64)
        rank = int(core_arr.shape[mode if core_arr.ndim > 1 else 0])
        factor_tuple = _as_uniform_tuple(factors)

        def kernel(
            indices_block: np.ndarray,
            values_block: np.ndarray,
            starts: np.ndarray,
        ) -> Tuple[np.ndarray, np.ndarray]:
            n_entries = indices_block.shape[0]
            starts = np.ascontiguousarray(starts, dtype=np.int64)
            counts = np.diff(np.append(starts, n_entries))
            return _fused_normal_equations(
                np.ascontiguousarray(indices_block, dtype=np.int64),
                np.ascontiguousarray(values_block, dtype=np.float64),
                starts,
                counts,
                factor_tuple,
                core_flat,
                core_shape,
                mode,
                rank,
            )

        return kernel

    def contract_delta_block(
        self,
        indices_block: np.ndarray,
        factors: Sequence[np.ndarray],
        core: np.ndarray,
        mode: int,
    ) -> np.ndarray:
        core_arr = np.asarray(core, dtype=np.float64)
        rank = int(core_arr.shape[mode if core_arr.ndim > 1 else 0])
        return _delta_block(
            np.ascontiguousarray(np.asarray(indices_block), dtype=np.int64),
            _as_uniform_tuple(factors),
            np.ascontiguousarray(core_arr.reshape(-1)),
            np.asarray(core_arr.shape, dtype=np.int64),
            mode,
            rank,
        )


NUMBA_VERSION = numba.__version__
