"""Optional numba JIT backend: fused δ + Gram accumulation in compiled loops.

Importing this module requires ``numba``; the package ``__init__`` guards
the import so the backend registers only where the dependency exists and
the registry silently falls back to the NumPy reference elsewhere
(``pip install .[numba]`` adds it).

The jitted kernel is the paper's OpenMP loop transliterated: an outer
``prange`` over rows (independent by Section III-B), an inner walk over
the row's observed entries, and per entry a scan over the core's nonzero
cells accumulating δ, then ``B += δδᵀ`` and ``c += X·δ``.  Per-entry work
is O(N·|G|) scalar multiplies — worse asymptotically than the progressive
contraction, but with no interpreter dispatch and no temporaries, which is
the profitable trade exactly where the NumPy path is weakest: many short
row segments at small |G|.  The autotuner decides per shape class which
strategy wins; nothing is assumed.

Input blocks are never re-copied when they already comply: a C-contiguous
integer index matrix of *any* dtype passes straight into the JIT (numba
compiles one specialisation per dtype, so narrow uint8/uint16/uint32
matrices run as-is), and float64/int64 value/offset arrays pass through
``ascontiguousarray`` untouched.  Columnar narrow blocks
(:class:`~repro.columns.IndexColumns`) take a second compiled route: the
factor rows of each entry are gathered *outside* the JIT with NumPy fancy
indexing (which consumes the narrow columns directly, no widening), and
the fused loop reads the gathered ``(m, J_k)`` float64 stacks — the same
multiplications in the same order, so the result is bitwise identical to
the matrix route.

Every loop reads the factor matrices and core in place — the S-HOT "never
materialise the unfolding" discipline carries over verbatim.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np
import numba
from numba import njit, prange

from ...columns import IndexColumns, as_index_block
from .base import KernelBackend, NormalEquationsKernel
from .degrade import JitCallGuard

#: Shared degrade switch: JIT compilation happens lazily at the first
#: kernel call and can fail there (LLVM/CPU mismatch, broken cache,
#: numba/numpy skew) even though ``import numba`` succeeded at registry
#: time.  The first failure warns once and every affected call — plus all
#: later ones — runs on the bitwise-identical numpy kernels instead of
#: crashing mid-sweep.  See :mod:`repro.kernels.backends.degrade`.
_JIT_GUARD = JitCallGuard("numba")


@njit(cache=True, parallel=True)
def _fused_normal_equations(
    indices, values, starts, counts, factors, core_flat, core_shape, mode, rank
):  # pragma: no cover - compiled; exercised only where numba is installed
    n_segments = starts.shape[0]
    order = indices.shape[1]
    n_cells = core_flat.shape[0]
    b_matrices = np.zeros((n_segments, rank, rank), dtype=np.float64)
    c_vectors = np.zeros((n_segments, rank), dtype=np.float64)
    for segment in prange(n_segments):
        delta = np.empty(rank, dtype=np.float64)
        for entry in range(starts[segment], starts[segment] + counts[segment]):
            for j in range(rank):
                delta[j] = 0.0
            for cell in range(n_cells):
                weight = core_flat[cell]
                remainder = cell
                kept_index = 0
                # Unravel the C-order flat cell index, multiplying in the
                # matching factor entries as each mode peels off.
                for k in range(order - 1, -1, -1):
                    j_k = remainder % core_shape[k]
                    remainder //= core_shape[k]
                    if k == mode:
                        kept_index = j_k
                    else:
                        weight *= factors[k][indices[entry, k], j_k]
                delta[kept_index] += weight
            value = values[entry]
            for a in range(rank):
                delta_a = delta[a]
                c_vectors[segment, a] += value * delta_a
                for b in range(rank):
                    b_matrices[segment, a, b] += delta_a * delta[b]
    return b_matrices, c_vectors


@njit(cache=True, parallel=True)
def _fused_normal_equations_gathered(
    gathered, values, starts, counts, core_flat, core_shape, mode, rank
):  # pragma: no cover - compiled; exercised only where numba is installed
    n_segments = starts.shape[0]
    order = core_shape.shape[0]
    n_cells = core_flat.shape[0]
    b_matrices = np.zeros((n_segments, rank, rank), dtype=np.float64)
    c_vectors = np.zeros((n_segments, rank), dtype=np.float64)
    for segment in prange(n_segments):
        delta = np.empty(rank, dtype=np.float64)
        for entry in range(starts[segment], starts[segment] + counts[segment]):
            for j in range(rank):
                delta[j] = 0.0
            for cell in range(n_cells):
                weight = core_flat[cell]
                remainder = cell
                kept_index = 0
                for k in range(order - 1, -1, -1):
                    j_k = remainder % core_shape[k]
                    remainder //= core_shape[k]
                    if k == mode:
                        kept_index = j_k
                    else:
                        # gathered[k][entry] is factors[k][indices[entry, k]]:
                        # the same float read, so the same product bit for bit.
                        weight *= gathered[k][entry, j_k]
                delta[kept_index] += weight
            value = values[entry]
            for a in range(rank):
                delta_a = delta[a]
                c_vectors[segment, a] += value * delta_a
                for b in range(rank):
                    b_matrices[segment, a, b] += delta_a * delta[b]
    return b_matrices, c_vectors


@njit(cache=True, parallel=True)
def _delta_block(
    indices, factors, core_flat, core_shape, mode, rank
):  # pragma: no cover - compiled; exercised only where numba is installed
    n_entries = indices.shape[0]
    order = indices.shape[1]
    n_cells = core_flat.shape[0]
    deltas = np.zeros((n_entries, rank), dtype=np.float64)
    for entry in prange(n_entries):
        for cell in range(n_cells):
            weight = core_flat[cell]
            remainder = cell
            kept_index = 0
            for k in range(order - 1, -1, -1):
                j_k = remainder % core_shape[k]
                remainder //= core_shape[k]
                if k == mode:
                    kept_index = j_k
                else:
                    weight *= factors[k][indices[entry, k], j_k]
            deltas[entry, kept_index] += weight
    return deltas


@njit(cache=True, parallel=True)
def _delta_block_gathered(
    gathered, n_entries, core_flat, core_shape, mode, rank
):  # pragma: no cover - compiled; exercised only where numba is installed
    order = core_shape.shape[0]
    n_cells = core_flat.shape[0]
    deltas = np.zeros((n_entries, rank), dtype=np.float64)
    for entry in prange(n_entries):
        for cell in range(n_cells):
            weight = core_flat[cell]
            remainder = cell
            kept_index = 0
            for k in range(order - 1, -1, -1):
                j_k = remainder % core_shape[k]
                remainder //= core_shape[k]
                if k == mode:
                    kept_index = j_k
                else:
                    weight *= gathered[k][entry, j_k]
            deltas[entry, kept_index] += weight
    return deltas


def _as_uniform_tuple(factors: Sequence[np.ndarray]):
    """Factors as a tuple of C-contiguous float64 matrices (numba UniTuple)."""
    return tuple(
        np.ascontiguousarray(np.asarray(factor), dtype=np.float64)
        for factor in factors
    )


def _compliant_matrix(indices_block: np.ndarray) -> np.ndarray:
    """An index matrix numba can consume without another copy.

    Any C-contiguous integer matrix passes through as-is — numba compiles
    one specialisation per dtype, so uint8/uint16/uint32 blocks run
    directly; only Fortran-ordered or float inputs pay a conversion.
    """
    indices_block = np.asarray(indices_block)
    if indices_block.dtype.kind in "iu" and indices_block.flags.c_contiguous:
        return indices_block
    return np.ascontiguousarray(indices_block, dtype=np.int64)


def _compliant(array: np.ndarray, dtype) -> np.ndarray:
    """``ascontiguousarray`` that is an explicit no-op on compliant input."""
    array = np.asarray(array)
    if array.dtype == dtype and array.flags.c_contiguous:
        return array
    return np.ascontiguousarray(array, dtype=dtype)


def _gather_factor_rows(
    factor_tuple, columns: IndexColumns, mode: int
):
    """Per-entry factor rows, gathered with the narrow columns directly.

    ``gathered[k][e] == factors[k][columns[:, k][e]]`` for every non-kept
    mode; the kept mode gets a 1x1 placeholder (never read) so the tuple
    stays homogeneous for numba.  NumPy's fancy indexing accepts the
    unsigned narrow columns as-is — no widened index copy is ever made.
    """
    placeholder = np.zeros((1, 1), dtype=np.float64)
    return tuple(
        placeholder
        if k == mode
        else np.ascontiguousarray(factor_tuple[k][columns.column(k)])
        for k in range(len(factor_tuple))
    )


class NumbaBackend(KernelBackend):
    """Kernel backend running the fused row loop under ``@njit(parallel=True)``."""

    name = "numba"

    def make_normal_equations_kernel(
        self,
        factors: Sequence[np.ndarray],
        core: np.ndarray,
        mode: int,
        expected_entries: int,
    ) -> NormalEquationsKernel:
        if _JIT_GUARD.failed:
            return _JIT_GUARD.fallback().make_normal_equations_kernel(
                factors, core, mode, expected_entries
            )
        core_arr = np.asarray(core, dtype=np.float64)
        core_flat = np.ascontiguousarray(core_arr.reshape(-1))
        core_shape = np.asarray(core_arr.shape, dtype=np.int64)
        rank = int(core_arr.shape[mode if core_arr.ndim > 1 else 0])
        factor_tuple = _as_uniform_tuple(factors)

        fallback_kernel: List[NormalEquationsKernel] = []

        def degraded(
            indices_block, values_block, starts
        ) -> Tuple[np.ndarray, np.ndarray]:
            if not fallback_kernel:
                fallback_kernel.append(
                    _JIT_GUARD.fallback().make_normal_equations_kernel(
                        factors, core, mode, expected_entries
                    )
                )
            return fallback_kernel[0](indices_block, values_block, starts)

        def kernel(
            indices_block,
            values_block: np.ndarray,
            starts: np.ndarray,
        ) -> Tuple[np.ndarray, np.ndarray]:
            if _JIT_GUARD.failed:
                return degraded(indices_block, values_block, starts)
            raw_block, raw_values, raw_starts = indices_block, values_block, starts
            indices_block = as_index_block(indices_block)
            n_entries = indices_block.shape[0]
            starts = _compliant(starts, np.int64)
            counts = np.diff(starts, append=n_entries)
            values_block = _compliant(values_block, np.float64)
            try:
                if isinstance(indices_block, IndexColumns):
                    return _fused_normal_equations_gathered(
                        _gather_factor_rows(factor_tuple, indices_block, mode),
                        values_block,
                        starts,
                        counts,
                        core_flat,
                        core_shape,
                        mode,
                        rank,
                    )
                return _fused_normal_equations(
                    _compliant_matrix(indices_block),
                    values_block,
                    starts,
                    counts,
                    factor_tuple,
                    core_flat,
                    core_shape,
                    mode,
                    rank,
                )
            except Exception as exc:  # JIT compiles lazily; failures land here
                _JIT_GUARD.note_failure(exc)
                return degraded(raw_block, raw_values, raw_starts)

        return kernel

    def contract_delta_block(
        self,
        indices_block,
        factors: Sequence[np.ndarray],
        core: np.ndarray,
        mode: int,
    ) -> np.ndarray:
        if _JIT_GUARD.failed:
            return _JIT_GUARD.fallback().contract_delta_block(
                indices_block, factors, core, mode
            )
        raw_block = indices_block
        core_arr = np.asarray(core, dtype=np.float64)
        rank = int(core_arr.shape[mode if core_arr.ndim > 1 else 0])
        core_flat = np.ascontiguousarray(core_arr.reshape(-1))
        core_shape = np.asarray(core_arr.shape, dtype=np.int64)
        factor_tuple = _as_uniform_tuple(factors)
        indices_block = as_index_block(indices_block)
        try:
            if isinstance(indices_block, IndexColumns):
                return _delta_block_gathered(
                    _gather_factor_rows(factor_tuple, indices_block, mode),
                    indices_block.shape[0],
                    core_flat,
                    core_shape,
                    mode,
                    rank,
                )
            return _delta_block(
                _compliant_matrix(indices_block),
                factor_tuple,
                core_flat,
                core_shape,
                mode,
                rank,
            )
        except Exception as exc:  # JIT compiles lazily; failures land here
            _JIT_GUARD.note_failure(exc)
            return _JIT_GUARD.fallback().contract_delta_block(
                raw_block, factors, core, mode
            )


NUMBA_VERSION = numba.__version__
