"""Backend interface and registry for the three hot kernel primitives.

A *backend* is a named implementation of the performance-critical inner
loops of the row-wise update: the δ contraction
(:func:`~repro.kernels.contraction.contract_delta_block`), the per-row
normal-equation reduction
(:func:`~repro.kernels.segments.normal_equations_sorted`) and the batched
row solve (:func:`~repro.kernels.solve.solve_rows`).  Every backend must
produce the same values as the reference NumPy implementation up to
floating-point associativity; only the execution strategy (serial NumPy,
shared-memory threads, JIT compilation, ...) may differ.

Backends register themselves by name in a process-global registry;
:func:`resolve_backend` maps the user-facing ``backend=`` knob (a name, a
:class:`KernelBackend` instance, or ``"auto"``) to a concrete backend.  An
optional backend whose dependency is missing (``numba``) simply never
registers — requesting it by name then silently falls back to the NumPy
reference, matching the "optional acceleration, identical results"
contract.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ...columns import as_index_block
from ..contraction import make_delta_contractor
from ..segments import normal_equations_sorted
from ..solve import solve_rows

#: Signature of a per-sweep normal-equations kernel: maps one mode-sorted
#: entry block ``(indices, values, segment_starts)`` to its per-row
#: ``(B, c)`` stacks.
NormalEquationsKernel = Callable[
    [np.ndarray, np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]
]


class KernelBackend:
    """Base class: the reference (serial NumPy) execution strategy.

    Subclasses override :meth:`make_normal_equations_kernel` (the fused
    δ-contraction + segmented-reduction pass that dominates a sweep) and,
    optionally, the individual primitives.  The base implementations are
    the plain :mod:`repro.kernels` functions, so a subclass only has to
    replace the pieces its strategy actually accelerates.
    """

    #: Registry name; subclasses must override.
    name = "numpy"

    # -- per-sweep fused pass -------------------------------------------
    def make_normal_equations_kernel(
        self,
        factors: Sequence[np.ndarray],
        core: np.ndarray,
        mode: int,
        expected_entries: int,
    ) -> NormalEquationsKernel:
        """Build the per-sweep ``(indices, values, starts) -> (B, c)`` kernel.

        Entry-independent state (precontraction tables, compiled
        specialisations, thread pools) is set up here, once per sweep; the
        returned callable is then invoked per ``block_size`` chunk of the
        mode-sorted entries.  ``starts`` are the block-local segment start
        offsets (first element 0) and the returned stacks have one row per
        segment.
        """
        contractor = make_delta_contractor(factors, core, mode, expected_entries)

        def kernel(
            indices_block: np.ndarray,
            values_block: np.ndarray,
            starts: np.ndarray,
        ) -> Tuple[np.ndarray, np.ndarray]:
            deltas = contractor(indices_block)
            return self.normal_equations_sorted(deltas, values_block, starts)

        return kernel

    # -- individual primitives ------------------------------------------
    def contract_delta_block(
        self,
        indices_block: np.ndarray,
        factors: Sequence[np.ndarray],
        core: np.ndarray,
        mode: int,
    ) -> np.ndarray:
        """δ vectors (Eq. 12) for one entry block."""
        indices_block = as_index_block(indices_block)
        contractor = make_delta_contractor(
            factors, core, mode, indices_block.shape[0]
        )
        return contractor(indices_block)

    def normal_equations_sorted(
        self,
        deltas: np.ndarray,
        values: np.ndarray,
        starts: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row ``B`` (Eq. 10) and ``c`` (Eq. 11) over row-sorted entries."""
        return normal_equations_sorted(deltas, values, starts)

    def solve_rows(
        self,
        b_matrices: np.ndarray,
        c_vectors: np.ndarray,
        regularization: float,
    ) -> np.ndarray:
        """Batched per-row ridge solve (Eq. 9)."""
        return solve_rows(b_matrices, c_vectors, regularization)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


class NumpyBackend(KernelBackend):
    """The always-available serial NumPy reference backend.

    Identical to :class:`KernelBackend`'s defaults; the subclass exists so
    the registry and reprs name the strategy explicitly.
    """

    name = "numpy"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, KernelBackend] = {}

#: Names that resolve even when their backend failed to register: optional
#: accelerators degrade to the NumPy reference instead of erroring.
OPTIONAL_BACKENDS = ("numba",)


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Add ``backend`` to the registry under its ``name`` (last wins)."""
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> List[str]:
    """Names of the registered backends, reference backend first."""
    names = sorted(_REGISTRY)
    if "numpy" in names:
        names.remove("numpy")
        names.insert(0, "numpy")
    return names


def get_backend(name: str) -> KernelBackend:
    """Look up a registered backend by name.

    Optional backends (``numba``) whose dependency is absent fall back to
    the NumPy reference silently; any other unknown name raises.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        if name in OPTIONAL_BACKENDS:
            return _REGISTRY["numpy"]
        raise KeyError(
            f"unknown kernel backend {name!r}; available: "
            f"{available_backends()} (or 'auto')"
        ) from None


BackendSpec = Union[str, KernelBackend, None]


def resolve_backend(spec: BackendSpec) -> KernelBackend:
    """Map a ``backend=`` argument to a concrete :class:`KernelBackend`.

    ``None`` means the reference backend; ``"auto"`` returns the shared
    autotuned dispatcher; a :class:`KernelBackend` instance passes through
    unchanged; any other string is a registry lookup.
    """
    if spec is None:
        return _REGISTRY["numpy"]
    if isinstance(spec, KernelBackend):
        return spec
    if spec == "auto":
        from .autotune import default_auto_backend

        return default_auto_backend()
    return get_backend(spec)


def backend_names_for_cli() -> List[str]:
    """The valid ``backend=`` strings: registered names plus the specials.

    Optional backends are listed even when unavailable (they resolve to the
    reference), so configs and CLI invocations stay portable across
    machines with and without the optional dependency.
    """
    names = set(available_backends()) | set(OPTIONAL_BACKENDS)
    return ["auto"] + sorted(names)
