"""Shared-memory threaded backend: segment-aligned chunks on a thread pool.

P-Tucker's Section III-B row-independence result makes this safe: the
normal equations of different rows never share state, so a mode-sorted
entry block can be split *at segment boundaries* and each chunk's
contraction + ``reduceat`` pass can run concurrently — every chunk owns a
disjoint slice of the output ``(B, c)`` stacks, so workers write without
locks.  Unlike :mod:`repro.parallel.executor` (a process pool that must
pickle factors and entries per call), the threads share the caller's
arrays directly; the heavy operations inside a chunk — the leading GEMM of
the progressive contraction, the batched ``matmul`` Gram reductions and
LAPACK's batched solves — all release the GIL, so chunks genuinely overlap
on multicore hosts.  With a single worker there is nothing to overlap and
per-chunk dispatch is pure overhead (measured ~10% at nnz=100k), so the
backend degrades to the exact serial path — the autotuner then sees two
equal candidates instead of a regression.

The pool is a process-global singleton reused across sweeps (threads are
cheap to keep idle, expensive to respawn per mode update).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...columns import as_index_block
from ..contraction import make_delta_contractor
from ..segments import normal_equations_sorted
from ..solve import solve_rows
from .base import KernelBackend, NormalEquationsKernel

#: Chunks smaller than this many entries are not worth a task dispatch.
MIN_CHUNK_ENTRIES = 8_192

#: Upper bound on chunks per block: enough tasks for dynamic balance over
#: skewed segment lengths without flooding the queue.
CHUNKS_PER_WORKER = 4

_POOL: Optional[ThreadPoolExecutor] = None
_POOL_WORKERS = 0
_POOL_LOCK = threading.Lock()


def shared_pool(n_workers: int) -> ThreadPoolExecutor:
    """The process-global executor, regrown if more workers are requested.

    A superseded smaller pool is *not* shut down — another backend instance
    may still be mapping work onto it; it simply stops being handed out and
    is reclaimed once its in-flight chunks finish and references drop.
    """
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        if _POOL is None or _POOL_WORKERS < n_workers:
            _POOL = ThreadPoolExecutor(
                max_workers=n_workers, thread_name_prefix="repro-kernel"
            )
            _POOL_WORKERS = n_workers
        return _POOL


def default_workers() -> int:
    """Worker count: ``REPRO_KERNEL_THREADS`` env override, else CPU count."""
    env = os.environ.get("REPRO_KERNEL_THREADS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def chunk_boundaries(
    starts: np.ndarray, n_entries: int, n_chunks: int
) -> np.ndarray:
    """Segment-aligned chunk edges (as indices into ``starts``).

    Targets equal entry counts per chunk, then snaps every edge to the
    nearest following segment boundary so no row's entries are ever split
    across chunks.  Returns the sorted, deduplicated edge positions into
    ``starts``, always beginning at 0 and ending at ``len(starts)``.
    """
    n_segments = starts.shape[0]
    if n_chunks <= 1 or n_segments <= 1:
        return np.asarray([0, n_segments], dtype=np.int64)
    targets = (np.arange(1, n_chunks, dtype=np.int64) * n_entries) // n_chunks
    edges = np.searchsorted(starts, targets, side="left")
    edges = np.unique(np.concatenate(([0], edges, [n_segments])))
    return edges.astype(np.int64)


class ThreadedBackend(KernelBackend):
    """Kernel backend running segment-aligned chunks on shared-memory threads."""

    name = "threaded"

    def __init__(
        self,
        n_workers: Optional[int] = None,
        min_chunk_entries: int = MIN_CHUNK_ENTRIES,
    ) -> None:
        self._n_workers = None if n_workers is None else max(1, int(n_workers))
        self.min_chunk_entries = int(min_chunk_entries)

    @property
    def n_workers(self) -> int:
        """Explicit worker count, else the current environment default.

        Resolved per access (not at construction) so setting
        ``REPRO_KERNEL_THREADS`` after import — as the verify recipe
        suggests on constrained hosts — affects the registered instance.
        """
        if self._n_workers is not None:
            return self._n_workers
        return default_workers()

    # ------------------------------------------------------------------
    def _n_chunks(self, n_entries: int, n_segments: int) -> int:
        if self.n_workers <= 1:
            # One worker cannot overlap chunks; splitting would only pay
            # per-chunk dispatch overhead, so degrade to the serial path.
            return 1
        by_size = n_entries // self.min_chunk_entries
        cap = max(self.n_workers * CHUNKS_PER_WORKER, 1)
        return max(1, min(by_size, cap, n_segments))

    def make_normal_equations_kernel(
        self,
        factors: Sequence[np.ndarray],
        core: np.ndarray,
        mode: int,
        expected_entries: int,
    ) -> NormalEquationsKernel:
        contractor = make_delta_contractor(factors, core, mode, expected_entries)
        rank = int(np.asarray(core).shape[mode if np.asarray(core).ndim > 1 else 0])

        def kernel(
            indices_block: np.ndarray,
            values_block: np.ndarray,
            starts: np.ndarray,
        ) -> Tuple[np.ndarray, np.ndarray]:
            n_entries = indices_block.shape[0]
            n_segments = starts.shape[0]
            n_chunks = self._n_chunks(n_entries, n_segments)
            if n_chunks <= 1:
                deltas = contractor(indices_block)
                return normal_equations_sorted(deltas, values_block, starts)

            edges = chunk_boundaries(starts, n_entries, n_chunks)
            b_matrices = np.empty((n_segments, rank, rank), dtype=np.float64)
            c_vectors = np.empty((n_segments, rank), dtype=np.float64)

            def work(chunk: int) -> None:
                seg_lo, seg_hi = edges[chunk], edges[chunk + 1]
                entry_lo = int(starts[seg_lo])
                entry_hi = (
                    int(starts[seg_hi]) if seg_hi < n_segments else n_entries
                )
                deltas = contractor(indices_block[entry_lo:entry_hi])
                local_starts = starts[seg_lo:seg_hi] - entry_lo
                partial_b, partial_c = normal_equations_sorted(
                    deltas, values_block[entry_lo:entry_hi], local_starts
                )
                b_matrices[seg_lo:seg_hi] = partial_b
                c_vectors[seg_lo:seg_hi] = partial_c

            pool = shared_pool(self.n_workers)
            # list() drains the iterator so worker exceptions propagate here.
            list(pool.map(work, range(edges.shape[0] - 1)))
            return b_matrices, c_vectors

        return kernel

    # ------------------------------------------------------------------
    def contract_delta_block(
        self,
        indices_block: np.ndarray,
        factors: Sequence[np.ndarray],
        core: np.ndarray,
        mode: int,
    ) -> np.ndarray:
        indices_block = as_index_block(indices_block)
        n_entries = indices_block.shape[0]
        contractor = make_delta_contractor(factors, core, mode, n_entries)
        n_chunks = self._n_chunks(n_entries, n_entries)
        if n_chunks <= 1:
            return contractor(indices_block)
        edges = np.linspace(0, n_entries, n_chunks + 1).astype(np.int64)
        pool = shared_pool(self.n_workers)
        parts: List[np.ndarray] = list(
            pool.map(
                lambda chunk: contractor(
                    indices_block[edges[chunk] : edges[chunk + 1]]
                ),
                range(n_chunks),
            )
        )
        return np.concatenate(parts, axis=0)

    def solve_rows(
        self,
        b_matrices: np.ndarray,
        c_vectors: np.ndarray,
        regularization: float,
    ) -> np.ndarray:
        n_rows = b_matrices.shape[0]
        n_chunks = 1
        if self.n_workers > 1:
            n_chunks = max(1, min(n_rows // self.min_chunk_entries, self.n_workers))
        if n_chunks <= 1:
            return solve_rows(b_matrices, c_vectors, regularization)
        edges = np.linspace(0, n_rows, n_chunks + 1).astype(np.int64)
        pool = shared_pool(self.n_workers)
        parts = list(
            pool.map(
                lambda chunk: solve_rows(
                    b_matrices[edges[chunk] : edges[chunk + 1]],
                    c_vectors[edges[chunk] : edges[chunk + 1]],
                    regularization,
                ),
                range(n_chunks),
            )
        )
        return np.concatenate(parts, axis=0)
