"""Kernel backend registry: named execution strategies for the hot primitives.

See :mod:`repro.kernels.backends.base` for the backend contract.  Importing
this package registers the built-in backends:

* ``"numpy"`` — the serial reference implementation (always available);
* ``"threaded"`` — segment-aligned chunks on a shared-memory thread pool
  (:mod:`~repro.kernels.backends.threaded`);
* ``"procpool"`` — the same chunk geometry on supervised worker
  *processes* over the execution fabric
  (:mod:`~repro.kernels.backends.procpool`): GIL-free overlap on
  multicore hosts plus transparent recovery from killed or hung workers;
  degrades to the serial reference on single-CPU hosts;
* ``"numba"`` — fused ``@njit(parallel=True)`` row loops, registered only
  when ``import numba`` succeeds (:mod:`~repro.kernels.backends.numba_backend`);
  requesting it by name without the dependency silently falls back to
  ``"numpy"``.

``"auto"`` resolves to the autotuned dispatcher of
:mod:`~repro.kernels.backends.autotune`, which measures the candidates per
(order, rank profile, block size) shape class and always executes the
measured-fastest one.

Consumers map the user-facing ``backend=`` knob (a registered name, a
:class:`~repro.kernels.backends.base.KernelBackend` instance, ``"auto"``
or ``None``) to a concrete backend with :func:`resolve_backend`; new
strategies subclass :class:`KernelBackend` and call
:func:`register_backend` once at import time.

Every backend consumes entry blocks in either layout — the conventional
``(m, N)`` int64 matrix or the narrow columnar
:class:`~repro.columns.IndexColumns` of format-v2 shard stores and
``index_dtype="auto"`` mode contexts — without widening copies, and
produces bit-identical results for both.
"""

from .base import (
    BackendSpec,
    KernelBackend,
    NumpyBackend,
    OPTIONAL_BACKENDS,
    available_backends,
    backend_names_for_cli,
    get_backend,
    register_backend,
    resolve_backend,
)
from .threaded import ThreadedBackend
from .procpool import ProcpoolBackend
from .autotune import AutoBackend, Autotuner, block_size_bucket, shape_class_key

register_backend(NumpyBackend())
register_backend(ThreadedBackend())
register_backend(ProcpoolBackend())

try:  # optional dependency: register only where the JIT stack exists
    from .numba_backend import NumbaBackend
except ImportError:  # pragma: no cover - exercised on numba-less hosts
    NumbaBackend = None
else:
    register_backend(NumbaBackend())

HAVE_NUMBA = NumbaBackend is not None

__all__ = [
    "AutoBackend",
    "Autotuner",
    "BackendSpec",
    "HAVE_NUMBA",
    "KernelBackend",
    "NumbaBackend",
    "NumpyBackend",
    "OPTIONAL_BACKENDS",
    "ProcpoolBackend",
    "ThreadedBackend",
    "available_backends",
    "backend_names_for_cli",
    "block_size_bucket",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "shape_class_key",
]
