"""Progressive core contraction against gathered factor rows.

The two entry points share one engine that contracts the non-kept modes of
the core against the factor rows of a block of ``m`` observed entries.  Two
complementary contraction strategies are combined per mode:

* **Precontraction** — when a mode's dimensionality ``I_k`` is no larger
  than the block (``I_k ≤ m``) and the resulting table stays small, the core
  is contracted against the *entire* factor matrix once
  (``T ← T ×_k A^(k)``, an ``I_k · |T|`` tensordot instead of ``m · |T|``
  batched work); the per-entry result is then a single row gather from the
  table.  Observed entries share mode indices, so this reuses every shared
  partial product instead of recomputing it per entry.
* **Batched contraction** — remaining (large-dimension) modes are reduced
  per entry: the first one as a plain GEMM introducing the batch axis with a
  C-contiguous result, each later one as a contiguous batched ``einsum``
  over the (always last) axis of the shrinking intermediate.

Every step removes one mode, so the per-entry intermediate only shrinks —
the ``(m, Π_{k≠n} J_k)`` Kronecker matrix of the seed kernel never exists.

See the package docstring of :mod:`repro.kernels` for the complexity
comparison against the seed Kronecker kernel.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..columns import as_index_block

#: Precontracted tables are capped at this many float64 cells (16 MB), so
#: the hybrid never trades the eliminated Kronecker intermediate for an
#: equally large table on wide-dimension modes.
PRECONTRACT_CELL_BUDGET = 1 << 21


class _ContractionPlan:
    """Entry-independent state of one contraction sweep.

    Built once per (factors, core, kept mode) and applied to any number of
    entry blocks: the precontracted table and the contraction schedule only
    depend on the model, so block loops (the solvers' ``block_size`` chunks)
    reuse them instead of rebuilding per block.

    ``batch_invariant=True`` swaps the one BLAS GEMM of :meth:`apply` for
    an :func:`numpy.einsum` with the same index structure.  BLAS tiles a
    GEMM differently depending on the batch dimension ``m``, so the same
    entry evaluated alone and inside a big block can differ in the last
    ulp; einsum's accumulation order over the contracted axis is fixed
    per output element regardless of the batch shape.  The serving layer
    (:mod:`repro.serve`) relies on this so that micro-batching never
    changes an answer; the fit path keeps the (faster) BLAS default.
    """

    __slots__ = (
        "factors",
        "pre",
        "pre_dims",
        "flat",
        "g",
        "rest",
        "loop_modes",
        "batch_invariant",
    )

    def __init__(
        self,
        factors: Sequence[np.ndarray],
        core_arr: np.ndarray,
        keep_mode: Optional[int],
        expected_entries: int,
        batch_invariant: bool = False,
    ) -> None:
        order = core_arr.ndim
        other = [k for k in range(order) if k != keep_mode]
        self.factors = factors
        self.batch_invariant = bool(batch_invariant)

        # Greedy precontraction set: smallest dimensions first, while the
        # table stays under budget and beats the batched cost over the sweep.
        pre: List[int] = []
        size = core_arr.size
        for k in sorted(other, key=lambda q: np.asarray(factors[q]).shape[0]):
            dim_k = np.asarray(factors[k]).shape[0]
            new_size = (size // core_arr.shape[k]) * dim_k
            if dim_k <= expected_entries and new_size <= PRECONTRACT_CELL_BUDGET:
                pre.append(k)
                size = new_size
        batch = [k for k in other if k not in pre]
        kept = [keep_mode] if keep_mode is not None else []
        self.pre = pre

        if pre:
            # Contract the table against whole factor matrices, tracking
            # which mode each table axis belongs to (~k marks mode k's I_k
            # axis).
            table = core_arr
            axes: List[int] = list(range(order))
            for k in pre:
                position = axes.index(k)
                table = np.tensordot(
                    table, np.asarray(factors[k]), axes=([position], [1])
                )
                axes.pop(position)
                axes.append(~k)
            target = [~k for k in pre] + kept + batch
            table = np.transpose(table, [axes.index(a) for a in target])
            self.pre_dims = table.shape[: len(pre)]
            self.rest = list(table.shape[len(pre) :])
            # C-contiguous explicitly: when the transpose happens to be
            # reshapeable as a strided view, ``take`` on the resulting
            # F-ordered array walks the whole table per gather (measured
            # ~8 ms on a 16 MB table for a single row) instead of copying
            # one contiguous row.
            self.flat = np.ascontiguousarray(
                table.reshape(int(np.prod(self.pre_dims, dtype=np.int64)), -1)
            )
            self.g = None
            self.loop_modes = batch
        else:
            # The first batched step reduces the core's last axis as one GEMM.
            self.g = np.transpose(core_arr, kept + batch)
            self.rest = list(self.g.shape[:-1])
            self.pre_dims = ()
            self.flat = None
            self.loop_modes = batch

    def apply(self, indices_block: np.ndarray) -> np.ndarray:
        """Contract the planned modes for one ``(m, N)`` entry block."""
        n_entries = indices_block.shape[0]
        factors = self.factors
        if self.pre:
            # Row-major composite index of each entry into the gathered axes.
            linear = np.zeros(n_entries, dtype=np.int64)
            for axis, k in enumerate(self.pre):
                linear = linear * self.pre_dims[axis] + indices_block[:, k]
            temp = self.flat.take(linear, axis=0)
            loop_modes = self.loop_modes
        else:
            # First step: the GEMM, batch axis leading.  Under
            # ``batch_invariant`` the same contraction runs as an einsum,
            # whose per-element accumulation order does not depend on the
            # batch dimension (BLAS retiles with m and can differ in the
            # last ulp between a lone entry and the same entry in a block).
            last = self.loop_modes[-1]
            rows = np.asarray(factors[last])[indices_block[:, last]]
            g2 = self.g.reshape(-1, self.g.shape[-1])
            if self.batch_invariant:
                temp = np.einsum("zj,xj->zx", rows, g2)
            else:
                temp = rows @ g2.T
            loop_modes = self.loop_modes[:-1]

        # Batched steps: the next mode to contract is always the
        # (contiguous) last axis of the shrinking intermediate.
        remaining = list(self.rest)
        for k in reversed(loop_modes):
            rows = np.asarray(factors[k])[indices_block[:, k]]
            rank_k = remaining.pop()
            temp = np.einsum(
                "zxj,zj->zx", temp.reshape(n_entries, -1, rank_k), rows
            )
        return temp.reshape(n_entries, -1)


def make_delta_contractor(
    factors: Sequence[np.ndarray],
    core: np.ndarray,
    mode: int,
    expected_entries: int,
    batch_invariant: bool = False,
):
    """A reusable ``indices_block -> (m, J_mode)`` δ kernel for one sweep.

    The precontraction tables are built once here; solvers iterating over
    ``block_size`` chunks call the returned function per block without
    redoing the entry-independent work.  ``batch_invariant=True`` makes the
    result of every row independent of the block it arrived in (see
    :class:`_ContractionPlan`); the serving layer's rank-space queries use
    it, fits keep the default.

    The returned closure exposes ``precontracted`` — the frozenset of
    modes whose factor *contents* were baked into its tables at build
    time.  A caller that mutates a factor in place must treat any closure
    that precontracted that mode as stale; the serving hot-swap rebuilds
    its contractors over a fresh factor snapshot for exactly this reason.
    """
    core_arr = np.asarray(core, dtype=np.float64)
    if core_arr.ndim == 1 and mode == 0:
        row = core_arr.reshape(1, -1)

        def contract_rank1(indices_block) -> np.ndarray:
            return np.tile(row, (indices_block.shape[0], 1))

        contract_rank1.precontracted = frozenset()
        return contract_rank1
    plan = _ContractionPlan(
        factors, core_arr, mode, expected_entries, batch_invariant
    )
    rank = core_arr.shape[mode]

    def contract(indices_block) -> np.ndarray:
        indices_block = as_index_block(indices_block)
        if indices_block.shape[0] == 0:
            return np.zeros((0, rank), dtype=np.float64)
        return plan.apply(indices_block)

    contract.precontracted = frozenset(plan.pre)
    return contract


def make_value_contractor(
    factors: Sequence[np.ndarray],
    core: np.ndarray,
    expected_entries: int,
    batch_invariant: bool = False,
):
    """A reusable ``indices_block -> (m,)`` model-value kernel for one sweep.

    ``batch_invariant=True`` makes each entry's value independent of the
    block it is evaluated in — the serving layer's point predictions use
    it so micro-batch composition can never change an answer.
    """
    core_arr = np.asarray(core, dtype=np.float64)
    plan = _ContractionPlan(
        factors, core_arr, None, expected_entries, batch_invariant
    )

    def contract(indices_block) -> np.ndarray:
        indices_block = as_index_block(indices_block)
        if indices_block.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        return plan.apply(indices_block).reshape(-1)

    contract.precontracted = frozenset(plan.pre)
    return contract


def contract_delta_block(
    indices_block: np.ndarray,
    factors: Sequence[np.ndarray],
    core: np.ndarray,
    mode: int,
) -> np.ndarray:
    """δ vectors (Eq. 12) for a block of observed entries, by core contraction.

    ``indices_block`` has shape ``(m, N)``; the result has shape
    ``(m, J_mode)`` and is numerically identical (up to floating-point
    associativity) to the seed Kronecker kernel
    :func:`repro.core.row_update.compute_delta_block`, without ever building
    the ``(m, Π_{k≠mode} J_k)`` intermediate.
    """
    indices_block = as_index_block(indices_block)
    contractor = make_delta_contractor(
        factors, core, mode, indices_block.shape[0]
    )
    return contractor(indices_block)


def contract_value_block(
    indices_block: np.ndarray,
    factors: Sequence[np.ndarray],
    core: np.ndarray,
) -> np.ndarray:
    """Model prediction (Eq. 4) at each entry of the block, by full contraction.

    Contracts *every* mode of the core, returning a 1-D array of length
    ``m``.  This replaces the seed path that materialised the full
    ``(m, |G|)`` Kronecker weight matrix before reducing against the
    flattened core.
    """
    indices_block = as_index_block(indices_block)
    contractor = make_value_contractor(factors, core, indices_block.shape[0])
    return contractor(indices_block)
