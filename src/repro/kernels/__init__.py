"""Contraction-ordered numerical kernels shared by every solver hot path.

This package is the single home of the performance-critical inner loops of
the repository: δ computation (Eq. 12), per-row normal-equation reduction
(Eqs. 10-11), the batched row solves (Eq. 9) and sparse reconstruction
(Eq. 4).  The P-Tucker solvers, the cache/approx/sampled variants, the
process-pool executor and the HOOI-style baselines all route through these
functions instead of carrying private copies of the math.

Contraction ordering
--------------------
The seed kernel materialised, for every block of ``m`` observed entries, the
running Kronecker product of the non-target factor rows — an
``(m, Π_{k≠n} J_k)`` intermediate — and then multiplied it against the
``(J_n, Π_{k≠n} J_k)`` unfolded core.  The kernels here never build that
matrix.  Instead the core is contracted *mode by mode* against the gathered
factor rows (largest mode first), in the S-HOT spirit of "reduce on the fly,
never materialise the unfolding":

    temp ← transpose(G, [n] + others)         # |G| = Π_k J_k cells
    for k ≠ n, from the last axis inward:
        temp ← contract(temp, A^(k)[i_k, :])  # GEMM, then batched einsum over m

Each contraction removes one mode, so the per-entry intermediate *shrinks*
from ``|G|`` toward ``J_n`` instead of growing to ``Π_{k≠n} J_k``.  The kept
mode leads the layout and the contracted axis is always the (contiguous)
last one: the first (and largest) contraction is a plain GEMM with a
C-contiguous ``(m, |G|/J_k)`` result, and every later step is a contiguous
batched inner reduction.

Complexity
----------
Per block of ``m`` entries the seed path costs
``O(m · Π_k J_k)`` memory for the Kronecker intermediate and
``O(m · J_n · Π_{k≠n} J_k)`` time for the dense product, i.e.
``O(nnz · Π J)`` per sweep with a full-width temporary per entry.  The
contraction schedule performs the same ``O(m · |G|)`` leading GEMM but every
later step operates on a strictly smaller tensor, giving
``O(nnz · Σ_k |G| / Π_{j<k} J_j)  ≈  O(nnz · Σ J · max|G|/J)`` time with a
largest temporary of ``O(m · |G| / max_k J_k)`` — and for the reductions,
``np.add.reduceat`` segment sums over mode-sorted entries replace
``np.add.at`` scatter-adds (which degrade to per-element scalar dispatch),
while per-row Gram matrices are accumulated as segmented δᵀδ products so the
``(m, J, J)`` outer-product array is never materialised.

Backend selection
-----------------
The three hot primitives — ``contract_delta_block``,
``normal_equations_sorted`` and ``solve_rows`` — are pluggable through the
:mod:`~repro.kernels.backends` registry.  Every consumer of the row update
accepts a ``backend=`` knob (``update_factor_mode``, ``PTuckerConfig``,
the parallel executor, the CLI's ``--backend`` and the microbench grid):

* ``"numpy"`` (default) — the serial reference path described above.
* ``"threaded"`` — splits each mode-sorted entry block at *segment
  boundaries* and runs the contraction + ``reduceat`` passes on a shared
  process-global ``ThreadPoolExecutor``; row independence (paper
  Section III-B) means the chunks write disjoint slices of ``(B, c)``
  with no locks, and the GEMMs inside release the GIL.  Worker count
  follows the CPU count (override with ``REPRO_KERNEL_THREADS``).
* ``"numba"`` — fused ``@njit(parallel=True)`` row loops, available only
  when ``numba`` is importable (``pip install .[numba]``); the name
  resolves to the NumPy reference elsewhere, so configs stay portable.
* ``"auto"`` — per-block autotuned dispatch: the first block of each
  (order, rank profile, block size) shape class times the candidate
  backends and every later block runs the measured winner (cached in
  process, and across processes via ``REPRO_AUTOTUNE_CACHE``).

All backends compute identical values up to floating-point associativity;
the equivalence is property-tested across orders, ragged ranks, empty
rows and single-entry segments.

Submodules
----------
* :mod:`~repro.kernels.contraction` — progressive core contraction (δ blocks
  and fully-contracted per-entry model values).
* :mod:`~repro.kernels.segments` — segment-sorted reductions (sums, Gram
  matrices, normal equations) and segment gather helpers.
* :mod:`~repro.kernels.solve` — the batched ridge row solve.
* :mod:`~repro.kernels.backends` — the named execution strategies and the
  autotuner behind the ``backend=`` knob.
* :mod:`~repro.kernels.microbench` — kernel/backend timing grids
  (imported lazily; it depends on the tensor and solver layers).
"""

from .contraction import (
    contract_delta_block,
    contract_value_block,
    make_delta_contractor,
    make_value_contractor,
)
from .segments import (
    block_segment_starts,
    concatenated_segment_starts,
    normal_equations_sorted,
    segment_gram,
    segment_positions,
    segment_sum,
)
from .solve import solve_rows
from .backends import (
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)

__all__ = [
    "KernelBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "contract_delta_block",
    "contract_value_block",
    "make_delta_contractor",
    "make_value_contractor",
    "block_segment_starts",
    "concatenated_segment_starts",
    "normal_equations_sorted",
    "segment_gram",
    "segment_positions",
    "segment_sum",
    "solve_rows",
]
