"""Low-rank factor diffs: versioned checkpoint states as R@C updates.

Successive factor states along a fit (or an incremental-update stream)
differ in few rows — ALS rewrites whole rows, targeted re-solves rewrite
only touched rows.  The difference ``new - old`` is therefore exactly
expressible as the product ``R @ C`` of a one-hot row-selection matrix
``R`` (shape ``(I, r)``, column ``j`` selecting changed row ``rows[j]``)
and the compact matrix ``C = new[rows] - old[rows]`` (shape ``(r, J)``)
— the classic low-rank update form, with the **rank** ``r`` *inferred*
as the number of rows whose bytes changed.

Storage and reconstruction deliberately avoid the additive form:
``old + R@C`` would round.  A diff stores the changed rows' replacement
values and reconstruction assigns them (``result[rows] = values``), which
copies bits — :func:`apply_factor_diff` over :func:`factor_diff` is a
**bitwise** round-trip for every float, including NaN payloads and
signed zeros.  Row change detection is likewise bytewise, so a row going
from ``0.0`` to ``-0.0`` is captured.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ShapeError


def _changed_rows(old: np.ndarray, new: np.ndarray) -> np.ndarray:
    """Indices of rows whose *bytes* differ (catches -0.0 and NaN bits)."""
    if old.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    a = np.ascontiguousarray(old).view(np.uint8).reshape(old.shape[0], -1)
    b = np.ascontiguousarray(new).view(np.uint8).reshape(new.shape[0], -1)
    return np.nonzero((a != b).any(axis=1))[0].astype(np.int64)


@dataclass(frozen=True)
class LowRankDiff:
    """One factor's change, stored at its inferred rank.

    ``rows`` are the changed row indices (sorted, int64) and ``values``
    their replacement rows ``new[rows]`` — the ``C`` of the update once
    shifted, selected by the one-hot ``R`` of :meth:`selection_matrix`.
    """

    rows: np.ndarray
    values: np.ndarray
    n_rows: int

    @property
    def rank(self) -> int:
        """The inferred update rank: how many rows changed."""
        return int(self.rows.shape[0])

    def selection_matrix(self) -> np.ndarray:
        """The one-hot ``R`` with ``R[rows[j], j] = 1`` (shape ``(I, r)``).

        Exists to make the R@C algebra inspectable:
        ``new == old + R @ (values - old[rows])`` up to float rounding;
        the stored representation applies the same update by row
        assignment instead, which is exact.
        """
        selection = np.zeros((self.n_rows, self.rank), dtype=np.float64)
        selection[self.rows, np.arange(self.rank)] = 1.0
        return selection


def factor_diff(old: np.ndarray, new: np.ndarray) -> LowRankDiff:
    """Infer the low-rank diff taking ``old`` to ``new``."""
    old = np.asarray(old, dtype=np.float64)
    new = np.asarray(new, dtype=np.float64)
    if old.shape != new.shape or old.ndim != 2:
        raise ShapeError(
            f"factor_diff needs two equal-shape 2-D factors, got "
            f"{old.shape} and {new.shape}"
        )
    rows = _changed_rows(old, new)
    return LowRankDiff(
        rows=rows,
        values=np.ascontiguousarray(new[rows], dtype=np.float64),
        n_rows=int(old.shape[0]),
    )


def apply_factor_diff(old: np.ndarray, diff: LowRankDiff) -> np.ndarray:
    """Reconstruct ``new`` from ``old`` and a diff — bitwise-exact."""
    old = np.asarray(old, dtype=np.float64)
    if old.ndim != 2 or old.shape[0] != diff.n_rows:
        raise ShapeError(
            f"diff was taken over a ({diff.n_rows}, ...) factor, got "
            f"{old.shape}"
        )
    if diff.rank and diff.values.shape[1] != old.shape[1]:
        raise ShapeError(
            f"diff rows have width {diff.values.shape[1]}, factor has "
            f"{old.shape[1]} columns"
        )
    result = np.array(old, dtype=np.float64, copy=True)
    if diff.rank:
        result[diff.rows] = diff.values
    return result
