"""Online incremental updates: new observations without a refit.

The paper's row independence means a new entry perturbs only the factor
rows it indexes.  This package turns that into a serving-friendly update
path over a fitted shard store:

* :class:`DeltaLog` (:mod:`~repro.updates.deltalog`) — crash-safe append
  of small ``.rcoo`` deltas beside the store, log commit as the atomic
  visibility point;
* :class:`UnionEntrySource` (:mod:`~repro.updates.union`) — the store
  plus its pending deltas presented lazily through both streaming
  protocols, with a per-mode ordering contract that keeps everything
  downstream bitwise-reproducible;
* **targeted** re-solves (:mod:`~repro.updates.resolve`) — only the
  touched rows' normal equations are re-run over the union, through the
  registered kernel backends, bitwise-equal to the same rows of a full
  sweep;
* **compaction** (:mod:`~repro.updates.compact`) — deltas fold into the
  shard files through the k-way merge, byte-identical to a fresh build
  of the union tensor, behind an idempotent crash-safe commit marker;
* low-rank checkpoint diffs (:mod:`~repro.updates.lowrank`) — versioned
  factor states stored as R@C row updates with rank inference,
  reconstructed bitwise by ``repro.resilience.checkpoint`` diff chains.

The verification harness for all of it lives in ``tests/updates/``:
a differential suite (targeted vs from-scratch, all orders/backends),
a chaos suite (SIGKILL mid-append and mid-compaction), and property
tests for diff round-trips.
"""

from .deltalog import DeltaLog, DeltaRecord
from .union import UnionEntrySource
from .resolve import apply_delta, solve_touched_rows
from .compact import COMPACT_MARKER, compact, complete_compaction
from .lowrank import LowRankDiff, apply_factor_diff, factor_diff

__all__ = [
    "COMPACT_MARKER",
    "DeltaLog",
    "DeltaRecord",
    "LowRankDiff",
    "UnionEntrySource",
    "append_delta",
    "apply_delta",
    "apply_factor_diff",
    "compact",
    "complete_compaction",
    "factor_diff",
    "solve_touched_rows",
]


def append_delta(store, delta_path: str) -> DeltaRecord:
    """Append one ``.rcoo`` delta to ``store``'s log (convenience wrapper)."""
    log = DeltaLog.open(store.directory)
    return log.append(delta_path, store.shape)
