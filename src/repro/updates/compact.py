"""Compaction: fold pending deltas into the shard store, crash-safely.

The union source streams through ``ShardStore.build_streaming`` (the
external-memory k-way merge of :mod:`repro.shards.merge`) into a scratch
directory ``<store>/.compact-tmp/``, so the compacted store is **byte**-for-
byte what a fresh build of the union tensor produces — same shard
boundaries, same narrow dtypes, same fingerprint.

The commit protocol mirrors the manifest-last discipline of the store
itself, with one extra piece because compaction must atomically switch
*between two multi-file states*:

1. build the full union store in scratch (crash here: the old store and
   its deltas are untouched; stale scratch is swept by the next attempt);
2. atomically write ``compact.commit.json`` in the store directory —
   **this marker is the commit point**; it lists the scratch files to
   move in, the old files to remove, and the delta files to retire;
3. :func:`complete_compaction` executes the marker: ``os.replace`` each
   scratch file into place with the scratch ``manifest.json`` moved
   **last**, then deletes retired files and finally the marker.

Every step of (3) is **idempotent** (moves skip missing sources, deletes
suppress missing targets), and ``ShardStore.open`` runs
:func:`complete_compaction` whenever it sees a marker — so a SIGKILL at
any instant leaves a directory that re-opens as either the pre-compaction
store with all deltas pending (marker never landed) or the fully
compacted store (marker landed; the next open finishes the moves).  There
is no reachable mixed state.
"""

from __future__ import annotations

import contextlib
import json
import os
import shutil
import signal
from typing import Optional, Set

from ..exceptions import DataFormatError
from ..resilience.atomic import atomic_write_json, fsync_directory
from ..shards.store import MANIFEST_NAME, ShardStore
from .deltalog import DELTA_DIR, DeltaLog
from .union import UnionEntrySource

#: Scratch directory the union store is built into, inside the store dir.
COMPACT_SCRATCH = ".compact-tmp"

#: The commit-point marker file.  Its atomic creation commits the
#: compaction; ``ShardStore.open`` completes any marker it finds.
COMPACT_MARKER = "compact.commit.json"

#: ``format`` field of the marker payload.
MARKER_FORMAT = "repro-compact-commit"

#: Current marker schema version.
MARKER_VERSION = 1

#: Test hook: ``before-commit`` SIGKILLs after the scratch build but
#: before the marker (pre-state must survive); ``after-commit`` SIGKILLs
#: right after the marker lands (the next open must finish the swap).
KILL_ENV = "REPRO_INJECT_COMPACT_KILL"


def _store_relative_files(store: ShardStore) -> Set[str]:
    """Store-relative data files (segmentation + shards), manifest excluded."""
    files: Set[str] = set()
    for mode in range(store.order):
        prefix = f"mode{mode}"
        for name in ("row_ids.npy", "row_starts.npy", "row_counts.npy"):
            files.add(os.path.join(prefix, name))
        for shard in store._shards[mode]:
            files.update(shard.column_paths)
            files.add(shard.values_path)
    return files


def complete_compaction(directory: str) -> bool:
    """Execute a pending ``compact.commit.json`` marker, if present.

    Idempotent: safe to call any number of times, including after a crash
    partway through a previous call.  Returns True when a marker was
    found and completed, False when the directory had none.
    """
    directory = os.fspath(directory)
    marker_path = os.path.join(directory, COMPACT_MARKER)
    try:
        with open(marker_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        return False
    except ValueError as exc:
        raise DataFormatError(f"{marker_path}: invalid JSON: {exc}") from exc
    if payload.get("format") != MARKER_FORMAT:
        raise DataFormatError(
            f"{marker_path}: not a compaction marker "
            f"(format={payload.get('format')!r})"
        )
    if int(payload.get("version", -1)) != MARKER_VERSION:
        raise DataFormatError(
            f"{marker_path}: unsupported compaction-marker version "
            f"{payload.get('version')} (this build reads {MARKER_VERSION})"
        )
    scratch = os.path.join(directory, str(payload["scratch"]))
    # Move the new store's data files in, manifest strictly last.  While
    # the marker exists every open routes back through this function, so
    # the half-moved intermediate is never observable; each move is an
    # os.replace that skips an already-moved source, which is what makes
    # re-running after a crash converge on the post-state.
    for relative in payload.get("store_files", []):
        source = os.path.join(scratch, relative)
        destination = os.path.join(directory, relative)
        if os.path.exists(source):
            os.makedirs(os.path.dirname(destination), exist_ok=True)
            os.replace(source, destination)
    scratch_manifest = os.path.join(scratch, MANIFEST_NAME)
    if os.path.exists(scratch_manifest):
        os.replace(scratch_manifest, os.path.join(directory, MANIFEST_NAME))
    fsync_directory(directory)
    for relative in payload.get("remove", []) + payload.get("deltas", []):
        with contextlib.suppress(FileNotFoundError):
            os.remove(os.path.join(directory, relative))
    # The delta directory is empty now (orphans from crashed appends were
    # overwritten by later appends and retired with them); drop it so the
    # compacted directory is file-for-file a fresh build.
    with contextlib.suppress(OSError):
        os.rmdir(os.path.join(directory, DELTA_DIR))
    os.remove(marker_path)
    fsync_directory(directory)
    shutil.rmtree(scratch, ignore_errors=True)
    return True


def compact(
    store,
    shard_nnz: Optional[int] = None,
    chunk_nnz: Optional[int] = None,
) -> ShardStore:
    """Fold all pending deltas of ``store`` into its shard files.

    ``store`` may be a :class:`ShardStore` or a directory path.  The
    result is byte-identical to ``ShardStore.build`` of the union tensor
    (base entries in canonical order followed by deltas in log order).
    Returns the re-opened compacted store; with no pending deltas the
    store is returned unchanged.
    """
    if not isinstance(store, ShardStore):
        store = ShardStore.open(os.fspath(store))
    directory = store.directory
    log = DeltaLog.open(directory)
    if not log.records:
        return store
    # Refuse to fold corrupt bytes into the store: every pending delta
    # must still match the digest its log commit pinned.
    log.verify()
    scratch = os.path.join(directory, COMPACT_SCRATCH)
    if os.path.isdir(scratch):
        shutil.rmtree(scratch)
    union = UnionEntrySource(store, log)
    new_store = ShardStore.build_streaming(
        union,
        scratch,
        shard_nnz=int(shard_nnz) if shard_nnz else store.shard_nnz,
        chunk_nnz=int(chunk_nnz) if chunk_nnz else None,
        shape=store.shape,
        index_dtype=store.index_dtype,
    )
    new_files = _store_relative_files(new_store)
    old_files = _store_relative_files(store)
    if os.environ.get(KILL_ENV) == "before-commit":
        os.kill(os.getpid(), signal.SIGKILL)
    atomic_write_json(
        os.path.join(directory, COMPACT_MARKER),
        {
            "format": MARKER_FORMAT,
            "version": MARKER_VERSION,
            "scratch": COMPACT_SCRATCH,
            "store_files": sorted(new_files),
            "remove": sorted(old_files - new_files),
            "deltas": log.relative_paths(),
        },
    )
    if os.environ.get(KILL_ENV) == "after-commit":
        os.kill(os.getpid(), signal.SIGKILL)
    complete_compaction(directory)
    return ShardStore.open(directory)
