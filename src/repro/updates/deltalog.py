"""The delta log: crash-safe append of ``.rcoo`` deltas beside a shard store.

New observations arrive long after a store was built and fitted; folding
them into the shard files immediately would rewrite gigabytes for a
handful of entries.  Instead they accumulate as small ``.rcoo`` containers
under ``<store>/deltas/`` and are recorded in ``deltas/deltalog.json`` —
the log is the **commit point**:

1. the delta's bytes are copied to ``deltas/delta<seq>.rcoo`` through the
   atomic write-tmp/fsync/rename discipline of
   :mod:`repro.resilience.atomic`;
2. the log is atomically rewritten with the new record, including the
   delta file's byte size and **sha256** digest.

A crash between the two steps leaves an orphan delta file that no log
names — invisible to every reader and harmlessly overwritten by the next
append — so a delta is either fully visible (in the log, digest pinned)
or not there at all; there is no torn state.  ``deltalog.json`` itself is
replaced atomically, so the log always parses.

Readers (:class:`~repro.updates.union.UnionEntrySource`, ``shards-verify``)
see the pending deltas in log-append order; :func:`DeltaLog.verify`
re-digests every pending file against its recorded sha256 and raises a
:class:`~repro.exceptions.DataFormatError` naming the damaged file on a
mismatch.  Compaction (:mod:`repro.updates.compact`) folds the pending
entries into the store and removes the log.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..exceptions import DataFormatError, ShapeError
from ..resilience.atomic import atomic_open, atomic_write_json, sha256_file
from ..tensor.io import RcooEntryReader

#: Subdirectory of the store holding pending delta containers and the log.
DELTA_DIR = "deltas"

#: The log file — the commit point of every append.
LOG_NAME = "deltalog.json"

#: ``format`` field value identifying a delta log.
LOG_FORMAT = "repro-delta-log"

#: Current log schema version.
LOG_VERSION = 1

#: Test hook: when set, :meth:`DeltaLog.append` SIGKILLs its own process
#: after the delta file lands but *before* the log commit — the chaos
#: suite uses it to pin the crash to the exact window the commit-point
#: design must make invisible.
KILL_AFTER_COPY_ENV = "REPRO_INJECT_DELTA_KILL"


@dataclass(frozen=True)
class DeltaRecord:
    """One committed delta: its file (store-relative), size, and digest."""

    file: str
    nnz: int
    bytes: int
    sha256: str

    def to_json(self) -> dict:
        return {
            "file": self.file,
            "nnz": self.nnz,
            "bytes": self.bytes,
            "sha256": self.sha256,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "DeltaRecord":
        try:
            return cls(
                file=str(payload["file"]),
                nnz=int(payload["nnz"]),
                bytes=int(payload["bytes"]),
                sha256=str(payload["sha256"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DataFormatError(
                f"malformed delta record in {LOG_NAME}: {exc}"
            ) from exc


class DeltaLog:
    """The ordered list of pending deltas of one shard store."""

    def __init__(self, directory: str, records: List[DeltaRecord]) -> None:
        self.directory = os.fspath(directory)
        self.records = records

    def __len__(self) -> int:
        return len(self.records)

    @property
    def pending_nnz(self) -> int:
        """Total entries across all pending deltas."""
        return sum(record.nnz for record in self.records)

    def delta_dir(self) -> str:
        """Absolute path of the delta subdirectory."""
        return os.path.join(self.directory, DELTA_DIR)

    def log_path(self) -> str:
        """Absolute path of the commit-point log file."""
        return os.path.join(self.delta_dir(), LOG_NAME)

    def relative_paths(self) -> List[str]:
        """Store-relative paths of every pending delta plus the log itself."""
        paths = [record.file for record in self.records]
        paths.append(os.path.join(DELTA_DIR, LOG_NAME))
        return paths

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, directory: str) -> "DeltaLog":
        """Read the delta log of a store directory (empty when none exists).

        Orphan delta files left behind by a crashed append are ignored —
        only the log defines what is pending.  A log that exists but does
        not parse raises :class:`DataFormatError`.
        """
        directory = os.fspath(directory)
        path = os.path.join(directory, DELTA_DIR, LOG_NAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return cls(directory, [])
        except ValueError as exc:
            raise DataFormatError(f"{path}: invalid JSON: {exc}") from exc
        if payload.get("format") != LOG_FORMAT:
            raise DataFormatError(
                f"{path}: not a delta log (format={payload.get('format')!r})"
            )
        if int(payload.get("version", -1)) != LOG_VERSION:
            raise DataFormatError(
                f"{path}: unsupported delta-log version "
                f"{payload.get('version')} (this build reads {LOG_VERSION})"
            )
        records = [DeltaRecord.from_json(r) for r in payload.get("deltas", [])]
        return cls(directory, records)

    def _write(self) -> None:
        atomic_write_json(
            self.log_path(),
            {
                "format": LOG_FORMAT,
                "version": LOG_VERSION,
                "deltas": [record.to_json() for record in self.records],
            },
        )

    # ------------------------------------------------------------------
    def append(
        self, delta_path: str, shape: Sequence[int]
    ) -> DeltaRecord:
        """Commit one ``.rcoo`` delta into the log.

        The container is validated (magic, version, shape against
        ``shape``) before any byte is copied; a format problem raises
        :class:`DataFormatError` / :class:`ShapeError` and changes
        nothing.  The copy is atomic and the log rewrite is the commit —
        a crash at any instant leaves either the previous log (the delta
        invisible) or the new one (the delta fully visible).
        """
        try:
            reader = RcooEntryReader(delta_path)
        except FileNotFoundError:
            raise DataFormatError(
                f"{delta_path}: delta file does not exist"
            ) from None
        if tuple(reader.shape) != tuple(int(s) for s in shape):
            raise ShapeError(
                f"{delta_path}: delta shape {tuple(reader.shape)} does not "
                f"match the store shape {tuple(int(s) for s in shape)}"
            )
        os.makedirs(self.delta_dir(), exist_ok=True)
        sequence = len(self.records)
        relative = os.path.join(DELTA_DIR, f"delta{sequence:07d}.rcoo")
        destination = os.path.join(self.directory, relative)
        with atomic_open(destination) as handle:
            with open(delta_path, "rb") as source:
                shutil.copyfileobj(source, handle)
        if os.environ.get(KILL_AFTER_COPY_ENV):
            # Chaos hook: die in the window between the file landing and
            # the log commit — the append must be invisible afterwards.
            os.kill(os.getpid(), signal.SIGKILL)
        record = DeltaRecord(
            file=relative,
            nnz=int(reader.nnz),
            bytes=os.path.getsize(destination),
            sha256=sha256_file(destination),
        )
        self.records.append(record)
        self._write()
        return record

    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Check every pending delta against its logged size and sha256.

        Raises :class:`DataFormatError` naming the damaged file on the
        first missing, truncated, padded, or digest-mismatched delta —
        the ``shards-verify`` CLI surfaces this as exit code 2.
        """
        for record in self.records:
            path = os.path.join(self.directory, record.file)
            try:
                size = os.path.getsize(path)
            except OSError:
                raise DataFormatError(
                    f"{path}: pending delta named by {LOG_NAME} is missing"
                ) from None
            if size != record.bytes:
                raise DataFormatError(
                    f"{path}: pending delta is {size} bytes, {LOG_NAME} "
                    f"says {record.bytes} — truncated or padded"
                )
            if sha256_file(path) != record.sha256:
                raise DataFormatError(
                    f"{path}: pending delta is corrupt "
                    f"(sha256 mismatch against its {LOG_NAME} record)"
                )

    def readers(self) -> List[RcooEntryReader]:
        """One :class:`RcooEntryReader` per pending delta, in log order."""
        return [
            RcooEntryReader(os.path.join(self.directory, record.file))
            for record in self.records
        ]

    def load_entries(self, order: int) -> Tuple[np.ndarray, np.ndarray]:
        """All pending entries concatenated in log-append order.

        Returns ``(indices, values)`` with int64 indices of shape
        ``(pending_nnz, order)``.  Deltas are small by design (that is why
        they are deltas), so loading them into RAM is the intended access
        pattern; the base store stays on disk.
        """
        if not self.records:
            return (
                np.empty((0, order), dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        index_parts: List[np.ndarray] = []
        value_parts: List[np.ndarray] = []
        for reader in self.readers():
            for indices, values in reader.iter_entry_chunks():
                index_parts.append(np.ascontiguousarray(indices, dtype=np.int64))
                value_parts.append(
                    np.ascontiguousarray(values, dtype=np.float64)
                )
        if not index_parts:
            return (
                np.empty((0, order), dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        return np.concatenate(index_parts), np.concatenate(value_parts)
