"""Entry source presenting a shard store plus its pending deltas as one tensor.

:class:`UnionEntrySource` speaks both streaming protocols of this codebase
without materializing the union:

* the **entry-source protocol** (``nnz`` / ``shape`` / ``mode_segmentation``
  / ``read_mode_block``) consumed by ``update_factor_mode(source=...)`` and
  the targeted re-solver — so the union can drive the same three-primitive
  kernel backends as the base store;
* the **chunked entry-reader protocol** (``iter_entry_chunks``) consumed by
  ``ShardStore.build_streaming`` — so compaction folds the union through
  the existing k-way merge.

Ordering contract (this is what makes targeted re-solves **bitwise**-equal
to full sweeps): the union's canonical entry sequence is the base store's
entries in their build order followed by the pending delta entries in
**log-append** order.  Each per-mode view is the stable sort of that
sequence by the mode's index — within one factor row, base entries keep
their relative order and precede delta entries, and delta entries keep
log order.  Because the base store's own per-mode shards are stable sorts
of the same base sequence, ``read_mode_block`` can merge lazily: it maps
a union range ``[start, stop)`` to one contiguous base range plus one
contiguous slice of the (sorted, in-RAM) delta entries, with no search
per entry.

The merge arithmetic, per mode: let ``ins[j]`` be the number of base
entries in the mode's order that precede delta entry ``j`` (all base
entries in earlier rows, plus the full row the delta lands in — ties go
base-first).  Then delta ``j`` sits at union position ``u[j] = ins[j] + j``
(strictly increasing), and base entry ``i`` sits at
``i + #{j : u[j] <= i + j}``; a union block ``[start, stop)`` therefore
contains exactly deltas ``searchsorted(u, start) .. searchsorted(u, stop)``
and base entries ``start - j_lo .. stop - j_hi``.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..columns import IndexColumns
from ..exceptions import ShapeError
from .deltalog import DeltaLog

#: Default chunk size for ``iter_entry_chunks`` (matches the ingest default).
DEFAULT_CHUNK_NNZ = 1_000_000


class UnionEntrySource:
    """Lazy union of a :class:`~repro.shards.store.ShardStore` and its deltas."""

    def __init__(self, store, log: Optional[DeltaLog] = None) -> None:
        self.store = store
        self.log = log if log is not None else DeltaLog.open(store.directory)
        indices, values = self.log.load_entries(store.order)
        if indices.shape[0]:
            upper = np.asarray(store.shape, dtype=np.int64)
            if (indices < 0).any() or (indices >= upper[None, :]).any():
                raise ShapeError(
                    f"delta entries fall outside the store shape "
                    f"{tuple(store.shape)}"
                )
        self.delta_indices = indices
        self.delta_values = values
        self.shape = tuple(int(s) for s in store.shape)
        self.nnz = int(store.nnz) + int(indices.shape[0])
        self.index_dtypes = tuple(store.index_dtypes)
        self._orders: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._segmentations: Dict[
            int, Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = {}

    @property
    def order(self) -> int:
        return len(self.shape)

    @property
    def delta_nnz(self) -> int:
        return int(self.delta_indices.shape[0])

    # -- per-mode merge positions --------------------------------------
    def _mode_order(self, mode: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(perm, u)``: delta permutation into mode order and the union
        positions of the sorted delta entries (strictly increasing)."""
        cached = self._orders.get(mode)
        if cached is not None:
            return cached
        perm = np.argsort(self.delta_indices[:, mode], kind="stable")
        sorted_rows = self.delta_indices[perm, mode]
        row_ids, _, row_counts = self.store.mode_segmentation(mode)
        cumulative = np.concatenate(
            ([0], np.cumsum(row_counts, dtype=np.int64))
        )
        # Base entries preceding each delta: every base entry whose row id
        # is <= the delta's row (ties break base-first).
        insertion = cumulative[
            np.searchsorted(row_ids, sorted_rows, side="right")
        ]
        union_positions = insertion + np.arange(perm.shape[0], dtype=np.int64)
        self._orders[mode] = (perm, union_positions)
        return perm, union_positions

    # -- entry-source protocol -----------------------------------------
    def mode_segmentation(
        self, mode: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Merged ``(row_ids, row_starts, row_counts)`` of the union.

        Bitwise-equal (values and int64 dtype) to the segmentation arrays
        a fresh build of the union tensor would record.
        """
        cached = self._segmentations.get(mode)
        if cached is not None:
            return cached
        base = self.store.mode_segmentation(mode)
        if self.delta_nnz == 0:
            self._segmentations[mode] = base
            return base
        base_ids, _, base_counts = base
        delta_ids, delta_counts = np.unique(
            self.delta_indices[:, mode], return_counts=True
        )
        row_ids = np.union1d(base_ids, delta_ids).astype(np.int64, copy=False)
        row_counts = np.zeros(row_ids.shape[0], dtype=np.int64)
        row_counts[np.searchsorted(row_ids, base_ids)] += base_counts
        row_counts[np.searchsorted(row_ids, delta_ids)] += delta_counts
        row_starts = np.zeros(row_ids.shape[0], dtype=np.int64)
        np.cumsum(row_counts[:-1], out=row_starts[1:])
        merged = (row_ids, row_starts, row_counts)
        self._segmentations[mode] = merged
        return merged

    def read_mode_block(
        self, mode: int, start: int, stop: int
    ) -> Tuple[IndexColumns, np.ndarray]:
        """Entries ``[start, stop)`` of the union in mode-sorted order.

        Index columns come back in the store's narrow dtypes and values as
        float64, byte-for-byte what a store built from the union tensor
        would return for the same range.
        """
        start = max(0, int(start))
        stop = min(int(stop), self.nnz)
        length = max(0, stop - start)
        order = self.order
        if length == 0:
            empty = [np.empty(0, dtype=d) for d in self.index_dtypes]
            return IndexColumns(empty), np.empty(0, dtype=np.float64)
        perm, union_positions = self._mode_order(mode)
        j_lo = int(np.searchsorted(union_positions, start, side="left"))
        j_hi = int(np.searchsorted(union_positions, stop, side="left"))
        base_lo = start - j_lo
        base_hi = stop - j_hi
        base_columns, base_values = self.store.read_mode_block(
            mode, base_lo, base_hi
        )
        columns = [np.empty(length, dtype=d) for d in self.index_dtypes]
        values = np.empty(length, dtype=np.float64)
        delta_mask = np.zeros(length, dtype=bool)
        if j_hi > j_lo:
            offsets = union_positions[j_lo:j_hi] - start
            delta_mask[offsets] = True
            selected = perm[j_lo:j_hi]
            for k in range(order):
                columns[k][offsets] = self.delta_indices[selected, k].astype(
                    self.index_dtypes[k], copy=False
                )
            values[offsets] = self.delta_values[selected]
        base_positions = np.nonzero(~delta_mask)[0]
        for k in range(order):
            columns[k][base_positions] = base_columns.column(k)
        values[base_positions] = base_values
        return IndexColumns(columns), values

    # -- chunked entry-reader protocol ---------------------------------
    def iter_entry_chunks(
        self, chunk_nnz: int = DEFAULT_CHUNK_NNZ
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """The canonical union sequence: base entries in the store's
        canonical (mode-0) order, then deltas in log-append order."""
        chunk_nnz = max(1, int(chunk_nnz))
        base_nnz = int(self.store.nnz)
        for start in range(0, base_nnz, chunk_nnz):
            stop = min(start + chunk_nnz, base_nnz)
            columns, values = self.store.read_mode_block(0, start, stop)
            yield columns.to_matrix(), values
        for start in range(0, self.delta_nnz, chunk_nnz):
            stop = min(start + chunk_nnz, self.delta_nnz)
            yield (
                np.ascontiguousarray(self.delta_indices[start:stop]),
                np.ascontiguousarray(self.delta_values[start:stop]),
            )

    # -- convenience ----------------------------------------------------
    def touched_rows(self, mode: int) -> np.ndarray:
        """Sorted unique factor rows of ``mode`` that pending deltas touch."""
        if self.delta_nnz == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(self.delta_indices[:, mode]).astype(
            np.int64, copy=False
        )
