"""Targeted row re-solves: update only the factor rows a delta touched.

The paper's row-independence structure makes incremental updates cheap:
factor row ``i`` of mode ``m`` solves ``(B_i + λI) x = c_i`` where ``B_i``
and ``c_i`` accumulate **only** over entries whose mode-``m`` index is
``i``.  New observations therefore perturb exactly the rows they index —
everything else is untouched.  :func:`solve_touched_rows` re-runs just
those rows' normal-equation solves over the union of old and new entries
and is **bitwise**-equal to the same rows of a full
:func:`~repro.core.row_update.update_factor_mode` sweep over the union,
on every registered kernel backend.

Why bitwise equality holds (and is tested, not assumed):

* accumulation — the union source is read in the same global
  ``block_size`` grid a full sweep uses, each block is handed to the
  backend's normal-equation kernel **whole** (full block, full
  ``local_starts``), and blocks are visited in increasing order; only the
  *keeping* of per-row partials differs, and ``+=`` into disjoint row
  slots is order-free across rows;
* solving — every backend's ``solve_rows`` factorizes each ``(B_i, c_i)``
  pair independently (batched LAPACK loops per matrix), so a row's
  solution does not depend on which other rows share the batch.

Rows with zero union entries have singular all-zero normal equations and
are left at their current values, matching the full sweep (which never
lists them).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..kernels.backends import resolve_backend
from .deltalog import DeltaLog
from .union import UnionEntrySource

DEFAULT_BLOCK_SIZE = 200_000


def solve_touched_rows(
    source,
    factors: Sequence[np.ndarray],
    core: np.ndarray,
    mode: int,
    rows: np.ndarray,
    regularization: float = 0.0,
    block_size: int = DEFAULT_BLOCK_SIZE,
    backend: str = "numpy",
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve the normal equations of ``rows`` of ``mode`` over ``source``.

    ``source`` is any entry-source (a shard store or a
    :class:`~repro.updates.union.UnionEntrySource`).  Returns
    ``(solved_rows, new_rows)``: the subset of ``rows`` that have at least
    one entry in ``source`` (sorted ascending) and their re-solved factor
    rows.  ``factors`` is not modified.
    """
    kernel_backend = resolve_backend(backend)
    rank = int(np.asarray(factors[mode]).shape[1])
    rows = np.unique(np.asarray(rows, dtype=np.int64))
    row_ids, row_starts, row_counts = source.mode_segmentation(mode)
    row_ids = np.asarray(row_ids, dtype=np.int64)
    row_starts = np.asarray(row_starts, dtype=np.int64)
    row_counts = np.asarray(row_counts, dtype=np.int64)
    n_entries = int(source.nnz)
    empty = (
        np.empty(0, dtype=np.int64),
        np.empty((0, rank), dtype=np.float64),
    )
    if rows.shape[0] == 0 or row_ids.shape[0] == 0:
        return empty
    # Positions in the segmentation of the touched rows that exist there;
    # touched rows with no entries anywhere simply drop out.
    present = rows[np.isin(rows, row_ids)]
    if present.shape[0] == 0:
        return empty
    listed = np.searchsorted(row_ids, present)
    n_touched = listed.shape[0]
    b_matrices = np.zeros((n_touched, rank, rank), dtype=np.float64)
    c_vectors = np.zeros((n_touched, rank), dtype=np.float64)
    ne_kernel = kernel_backend.make_normal_equations_kernel(
        factors, core, mode, n_entries
    )
    block_size = max(1, int(block_size))
    # The global blocks (same grid as a full sweep) that intersect any
    # touched row's entry segment.
    segment_lo = row_starts[listed]
    segment_hi = segment_lo + row_counts[listed]
    first_block = segment_lo // block_size
    last_block = (segment_hi - 1) // block_size
    needed: set = set()
    for lo, hi in zip(first_block, last_block):
        needed.update(range(int(lo), int(hi) + 1))
    for block_number in sorted(needed):
        start = block_number * block_size
        stop = min(start + block_size, n_entries)
        first = int(np.searchsorted(row_starts, start, side="right")) - 1
        last = int(np.searchsorted(row_starts, stop, side="left"))
        local_rows = np.arange(first, last)
        local_starts = np.maximum(row_starts[first:last] - start, 0)
        indices_block, values_block = source.read_mode_block(mode, start, stop)
        partial_b, partial_c = ne_kernel(indices_block, values_block, local_starts)
        keep = np.isin(local_rows, listed)
        if not keep.any():
            continue
        destinations = np.searchsorted(listed, local_rows[keep])
        b_matrices[destinations] += partial_b[keep]
        c_vectors[destinations] += partial_c[keep]
    new_rows = kernel_backend.solve_rows(b_matrices, c_vectors, regularization)
    return row_ids[listed], new_rows


def apply_delta(
    store,
    factors: List[np.ndarray],
    core: np.ndarray,
    regularization: float = 0.0,
    block_size: int = DEFAULT_BLOCK_SIZE,
    backend: str = "numpy",
    log: Optional[DeltaLog] = None,
) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
    """Fold a store's pending deltas into ``factors`` by targeted re-solves.

    Modes are visited in ascending order and each mode's touched rows are
    re-solved against the union source *with the earlier modes' updates
    already applied* — the same sequential structure as one ALS sweep
    restricted to the touched rows.  ``factors`` is updated in place.

    Returns ``{mode: (rows, new_rows)}`` for every mode that had at least
    one touched row with union entries — the exact row swaps a serving
    process feeds to ``ServingModel.apply_update``.
    """
    log = log if log is not None else DeltaLog.open(store.directory)
    union = UnionEntrySource(store, log)
    updates: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    if union.delta_nnz == 0:
        return updates
    for mode in range(union.order):
        touched = union.touched_rows(mode)
        solved_rows, new_rows = solve_touched_rows(
            union,
            factors,
            core,
            mode,
            touched,
            regularization=regularization,
            block_size=block_size,
            backend=backend,
        )
        if solved_rows.shape[0] == 0:
            continue
        factor = np.ascontiguousarray(factors[mode], dtype=np.float64)
        factor[solved_rows] = new_rows
        factors[mode] = factor
        updates[mode] = (solved_rows, new_rows)
    return updates
