"""Optional process-based parallel row updates.

The default P-Tucker path vectorises each mode update globally, which is the
fastest strategy for NumPy.  For completeness — and to demonstrate that the
row independence property of Section III-B really does permit parallel
execution — this module provides a process-pool executor that partitions the
rows of one mode across workers, updates each partition independently with
the same contraction kernel, and merges the results.  Because rows are
independent, the merged factor matrix is identical (up to floating-point
associativity) to the serial result; a test asserts this.

Worker inputs are presliced in the parent: the sorted
:class:`~repro.core.row_update.ModeContext` already groups each row's entries
into one contiguous segment, so a worker's entries are gathered with an
O(assigned entries) segment lookup instead of an ``np.isin`` scan over all
nnz entries per worker, and each worker receives only its own slice of the
entry arrays.  Callers driving repeated sweeps pass a prebuilt ``context``
(the sort is O(nnz log nnz), pointless to redo per iteration), and a
``backend`` name selects the kernel execution strategy *inside* each worker
(see :mod:`repro.kernels.backends`; names travel over pickle, backend
objects need not).  A ``source=`` shard store
(:class:`~repro.shards.store.ShardStore`) replaces the in-RAM sorted arrays
entirely: worker slices are gathered straight from the memory-mapped shards.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import List, Optional, Tuple

import numpy as np

from ..exceptions import WorkerFailureError
from ..kernels import (
    concatenated_segment_starts,
    resolve_backend,
    segment_positions,
)
from ..tensor.coo import SparseTensor
from ..core.row_update import ModeContext, build_mode_context
from .partition import partition_rows

logger = logging.getLogger(__name__)

#: Times the executor rebuilds the pool and re-dispatches unfinished row
#: subsets after worker deaths before giving up with WorkerFailureError.
DEFAULT_MAX_RETRIES = 2

#: Fault-injection hook (tests only): when this environment variable names
#: a path, the first worker task to run creates it exclusively and kills
#: its own process with ``os._exit`` — exactly the abrupt death (no
#: exception, no cleanup) a SIGKILL or OOM-kill produces.  Because the
#: path then exists, every later attempt proceeds normally, giving the
#: chaos tests a deterministic die-once worker.
INJECT_WORKER_DEATH_ENV = "REPRO_INJECT_WORKER_DEATH"


def _maybe_inject_worker_death() -> None:
    sentinel = os.environ.get(INJECT_WORKER_DEATH_ENV, "")
    if not sentinel:
        return
    try:
        fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return  # already died once; behave normally from here on
    os.close(fd)
    os._exit(1)


def _update_row_subset(
    local_indices: np.ndarray,
    local_values: np.ndarray,
    segment_starts: np.ndarray,
    factors: List[np.ndarray],
    core: np.ndarray,
    mode: int,
    rows: np.ndarray,
    regularization: float,
    backend: str = "numpy",
) -> Tuple[np.ndarray, np.ndarray]:
    """Worker: solve the rows of one partition from its presliced entries.

    ``local_indices``/``local_values`` hold only this worker's entries,
    ordered so each row of ``rows`` is one contiguous segment starting at
    ``segment_starts``.  Returns ``(rows, new_row_values)``.  Module-level so
    it can be pickled by ``ProcessPoolExecutor``.
    """
    _maybe_inject_worker_death()
    kernel_backend = resolve_backend(backend)
    ne_kernel = kernel_backend.make_normal_equations_kernel(
        factors, core, mode, local_indices.shape[0]
    )
    b_matrices, c_vectors = ne_kernel(local_indices, local_values, segment_starts)
    return rows, kernel_backend.solve_rows(b_matrices, c_vectors, regularization)


def _update_row_subset_from_source(
    source,
    entry_positions: np.ndarray,
    segment_starts: np.ndarray,
    factors: List[np.ndarray],
    core: np.ndarray,
    mode: int,
    rows: np.ndarray,
    regularization: float,
    backend: str = "numpy",
) -> Tuple[np.ndarray, np.ndarray]:
    """Worker: gather this partition's entries from the shard store itself.

    The parent ships only the (rows-sized) entry positions; the worker maps
    the store's shards and gathers its own slice, so the parent never holds
    any partition's index/value copies — that is the out-of-core point.
    """
    local_indices, local_values = source.gather_mode_entries(mode, entry_positions)
    return _update_row_subset(
        local_indices,
        local_values,
        segment_starts,
        factors,
        core,
        mode,
        rows,
        regularization,
        backend,
    )


def parallel_update_factor_mode(
    tensor: Optional[SparseTensor],
    factors: List[np.ndarray],
    core: np.ndarray,
    mode: int,
    regularization: float,
    n_workers: int = 2,
    scheduling: str = "dynamic",
    executor: Optional[ProcessPoolExecutor] = None,
    context: Optional[ModeContext] = None,
    backend: str = "numpy",
    source=None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    timeout: Optional[float] = None,
) -> np.ndarray:
    """Update ``A^(mode)`` using a pool of worker processes.

    Rows are partitioned by their |Ω_in| cost under the requested scheduling
    policy, each worker solves its rows independently from a presliced
    segment of the mode-sorted entries, and the updated rows are merged into
    the factor matrix in place.  ``context`` reuses a prebuilt
    :class:`~repro.core.row_update.ModeContext` across sweeps instead of
    re-sorting the entries on every invocation.

    ``source`` slices each worker's entries out of an on-disk shard store
    (:class:`~repro.shards.store.ShardStore`) instead of in-RAM sorted
    arrays: the parent ships only row partitions and entry positions, and
    each *worker* gathers its own slice from the memory-mapped shards, so
    no process ever materialises more than one partition's entries.
    ``tensor`` / ``context`` may then be ``None``.

    The dispatch survives worker death: a ``BrokenProcessPool`` (a worker
    SIGKILLed, OOM-killed or crashed) or a per-future ``timeout`` expiry
    makes the executor rebuild the pool and re-dispatch *only the row
    subsets that never finished* — results already merged stay merged, and
    because rows are independent the recovered update is identical to an
    undisturbed run.  After ``max_retries`` rebuilds the attempt stops
    with a :class:`~repro.exceptions.WorkerFailureError` naming the mode
    and the outstanding rows.  Exceptions *raised* by a worker (a real
    bug, not a death) propagate immediately — retrying deterministic
    errors would only repeat them.
    """
    if source is not None:
        row_ids, row_starts, row_counts = source.mode_segmentation(mode)
    else:
        if context is None:
            if tensor is None:
                raise ValueError(
                    "provide a tensor, a prebuilt context, or a source"
                )
            context = build_mode_context(tensor, mode)
        row_ids, row_starts = context.row_ids, context.row_starts
        row_counts = context.row_counts
    if row_ids.shape[0] == 0:
        return factors[mode]

    partition = partition_rows(row_counts.astype(np.float64), n_workers, scheduling)

    jobs: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for worker in range(partition.n_threads):
        positions = partition.thread_items(worker)
        if not positions.size:
            continue
        counts = row_counts[positions]
        entry_positions = segment_positions(row_starts[positions], counts)
        starts = concatenated_segment_starts(counts)
        jobs.append((entry_positions, starts, row_ids[positions]))

    def submit(pool: ProcessPoolExecutor, job):
        entry_positions, starts, rows = job
        if source is not None:
            return pool.submit(
                _update_row_subset_from_source,
                source,
                entry_positions,
                starts,
                [np.asarray(f) for f in factors],
                np.asarray(core),
                mode,
                rows,
                regularization,
                backend,
            )
        return pool.submit(
            _update_row_subset,
            context.sorted_indices[entry_positions],
            context.sorted_values[entry_positions],
            starts,
            [np.asarray(f) for f in factors],
            np.asarray(core),
            mode,
            rows,
            regularization,
            backend,
        )

    pool = executor or ProcessPoolExecutor(max_workers=n_workers)
    own_pools: List[ProcessPoolExecutor] = [] if executor is not None else [pool]
    pending = list(range(len(jobs)))
    retries = 0
    try:
        while pending:
            futures = {job_id: submit(pool, jobs[job_id]) for job_id in pending}
            unfinished: List[int] = []
            pool_suspect = False
            for job_id, future in futures.items():
                try:
                    rows, new_values = future.result(timeout=timeout)
                except BrokenProcessPool:
                    unfinished.append(job_id)
                    pool_suspect = True
                except FuturesTimeoutError:
                    # The worker may still be wedged on this task; the only
                    # safe recovery is a fresh pool for the re-dispatch.
                    future.cancel()
                    unfinished.append(job_id)
                    pool_suspect = True
                else:
                    factors[mode][rows] = new_values
            if not unfinished:
                break
            if retries >= max_retries:
                outstanding = np.concatenate(
                    [jobs[job_id][2] for job_id in unfinished]
                )
                raise WorkerFailureError(
                    f"mode-{mode} parallel update failed: worker processes "
                    f"died or timed out {retries + 1} times "
                    f"(max_retries={max_retries}); {outstanding.shape[0]} "
                    f"rows never finished (first few: "
                    f"{outstanding[:8].tolist()})"
                )
            retries += 1
            pending = unfinished
            logger.warning(
                "mode-%d parallel update lost %d of %d row subsets to "
                "worker death/timeout; rebuilding the pool and "
                "re-dispatching (retry %d of %d)",
                mode,
                len(unfinished),
                len(jobs),
                retries,
                max_retries,
            )
            if pool_suspect:
                # A caller-supplied pool that broke stays the caller's to
                # shut down; the retry always gets a fresh pool of ours.
                if pool in own_pools:
                    pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=n_workers)
                own_pools.append(pool)
    finally:
        for own in own_pools:
            own.shutdown()
    return factors[mode]
