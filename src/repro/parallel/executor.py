"""Optional process-based parallel row updates.

The default P-Tucker path vectorises each mode update globally, which is the
fastest strategy for NumPy.  For completeness — and to demonstrate that the
row independence property of Section III-B really does permit parallel
execution — this module provides a process-pool executor that partitions the
rows of one mode across workers, updates each partition independently with
the same contraction kernel, and merges the results.  Because rows are
independent, the merged factor matrix is identical (up to floating-point
associativity) to the serial result; a test asserts this.

Worker inputs are presliced in the parent: the sorted
:class:`~repro.core.row_update.ModeContext` already groups each row's entries
into one contiguous segment, so a worker's entries are gathered with an
O(assigned entries) segment lookup instead of an ``np.isin`` scan over all
nnz entries per worker, and each worker receives only its own slice of the
entry arrays.  Callers driving repeated sweeps pass a prebuilt ``context``
(the sort is O(nnz log nnz), pointless to redo per iteration), and a
``backend`` name selects the kernel execution strategy *inside* each worker
(see :mod:`repro.kernels.backends`; names travel over pickle, backend
objects need not).  A ``source=`` shard store
(:class:`~repro.shards.store.ShardStore`) replaces the in-RAM sorted arrays
entirely: worker slices are gathered straight from the memory-mapped shards.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

from ..kernels import (
    concatenated_segment_starts,
    resolve_backend,
    segment_positions,
)
from ..tensor.coo import SparseTensor
from ..core.row_update import ModeContext, build_mode_context
from .partition import partition_rows


def _update_row_subset(
    local_indices: np.ndarray,
    local_values: np.ndarray,
    segment_starts: np.ndarray,
    factors: List[np.ndarray],
    core: np.ndarray,
    mode: int,
    rows: np.ndarray,
    regularization: float,
    backend: str = "numpy",
) -> Tuple[np.ndarray, np.ndarray]:
    """Worker: solve the rows of one partition from its presliced entries.

    ``local_indices``/``local_values`` hold only this worker's entries,
    ordered so each row of ``rows`` is one contiguous segment starting at
    ``segment_starts``.  Returns ``(rows, new_row_values)``.  Module-level so
    it can be pickled by ``ProcessPoolExecutor``.
    """
    kernel_backend = resolve_backend(backend)
    ne_kernel = kernel_backend.make_normal_equations_kernel(
        factors, core, mode, local_indices.shape[0]
    )
    b_matrices, c_vectors = ne_kernel(local_indices, local_values, segment_starts)
    return rows, kernel_backend.solve_rows(b_matrices, c_vectors, regularization)


def _update_row_subset_from_source(
    source,
    entry_positions: np.ndarray,
    segment_starts: np.ndarray,
    factors: List[np.ndarray],
    core: np.ndarray,
    mode: int,
    rows: np.ndarray,
    regularization: float,
    backend: str = "numpy",
) -> Tuple[np.ndarray, np.ndarray]:
    """Worker: gather this partition's entries from the shard store itself.

    The parent ships only the (rows-sized) entry positions; the worker maps
    the store's shards and gathers its own slice, so the parent never holds
    any partition's index/value copies — that is the out-of-core point.
    """
    local_indices, local_values = source.gather_mode_entries(mode, entry_positions)
    return _update_row_subset(
        local_indices,
        local_values,
        segment_starts,
        factors,
        core,
        mode,
        rows,
        regularization,
        backend,
    )


def parallel_update_factor_mode(
    tensor: Optional[SparseTensor],
    factors: List[np.ndarray],
    core: np.ndarray,
    mode: int,
    regularization: float,
    n_workers: int = 2,
    scheduling: str = "dynamic",
    executor: Optional[ProcessPoolExecutor] = None,
    context: Optional[ModeContext] = None,
    backend: str = "numpy",
    source=None,
) -> np.ndarray:
    """Update ``A^(mode)`` using a pool of worker processes.

    Rows are partitioned by their |Ω_in| cost under the requested scheduling
    policy, each worker solves its rows independently from a presliced
    segment of the mode-sorted entries, and the updated rows are merged into
    the factor matrix in place.  ``context`` reuses a prebuilt
    :class:`~repro.core.row_update.ModeContext` across sweeps instead of
    re-sorting the entries on every invocation.

    ``source`` slices each worker's entries out of an on-disk shard store
    (:class:`~repro.shards.store.ShardStore`) instead of in-RAM sorted
    arrays: the parent ships only row partitions and entry positions, and
    each *worker* gathers its own slice from the memory-mapped shards, so
    no process ever materialises more than one partition's entries.
    ``tensor`` / ``context`` may then be ``None``.
    """
    if source is not None:
        row_ids, row_starts, row_counts = source.mode_segmentation(mode)
    else:
        if context is None:
            if tensor is None:
                raise ValueError(
                    "provide a tensor, a prebuilt context, or a source"
                )
            context = build_mode_context(tensor, mode)
        row_ids, row_starts = context.row_ids, context.row_starts
        row_counts = context.row_counts
    if row_ids.shape[0] == 0:
        return factors[mode]

    partition = partition_rows(row_counts.astype(np.float64), n_workers, scheduling)

    jobs: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for worker in range(partition.n_threads):
        positions = partition.thread_items(worker)
        if not positions.size:
            continue
        counts = row_counts[positions]
        entry_positions = segment_positions(row_starts[positions], counts)
        starts = concatenated_segment_starts(counts)
        jobs.append((entry_positions, starts, row_ids[positions]))

    own_executor = executor is None
    pool = executor or ProcessPoolExecutor(max_workers=n_workers)
    try:
        futures = []
        for entry_positions, starts, rows in jobs:
            if source is not None:
                futures.append(
                    pool.submit(
                        _update_row_subset_from_source,
                        source,
                        entry_positions,
                        starts,
                        [np.asarray(f) for f in factors],
                        np.asarray(core),
                        mode,
                        rows,
                        regularization,
                        backend,
                    )
                )
            else:
                futures.append(
                    pool.submit(
                        _update_row_subset,
                        context.sorted_indices[entry_positions],
                        context.sorted_values[entry_positions],
                        starts,
                        [np.asarray(f) for f in factors],
                        np.asarray(core),
                        mode,
                        rows,
                        regularization,
                        backend,
                    )
                )
        for future in futures:
            rows, new_values = future.result()
            factors[mode][rows] = new_values
    finally:
        if own_executor:
            pool.shutdown()
    return factors[mode]
