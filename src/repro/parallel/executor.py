"""Fabric-supervised parallel row updates across worker processes.

The default P-Tucker path vectorises each mode update globally, which is the
fastest strategy for NumPy.  For completeness — and to demonstrate that the
row independence property of Section III-B really does permit parallel
execution — this module partitions the rows of one mode across worker
processes, updates each partition independently with the same contraction
kernel, and merges the results.  Because rows are independent, the merged
factor matrix is identical (up to floating-point associativity) to the
serial result; a test asserts this.

Execution runs on the supervised fabric (:mod:`repro.fabric`): each row
partition becomes one fabric task, so worker death (SIGKILL, OOM), hangs
(missed heartbeats) and wedged tasks (deadline overrun) are detected and
recovered by re-dispatching *only the unfinished partitions*, after an
exponential backoff with decorrelated jitter
(:class:`repro.resilience.retry.BackoffPolicy`).  Row independence makes
the re-dispatch — and the fabric's straggler hedging — invisible in the
output.  A partition that keeps failing surfaces as
:class:`~repro.exceptions.WorkerFailureError` naming the mode and rows;
an exception *raised* by a worker (a real bug, not a death) propagates
immediately, since retrying deterministic errors would only repeat them.

Worker inputs are presliced in the parent: the sorted
:class:`~repro.core.row_update.ModeContext` already groups each row's entries
into one contiguous segment, so a worker's entries are gathered with an
O(assigned entries) segment lookup instead of an ``np.isin`` scan over all
nnz entries per worker, and each worker receives only its own slice of the
entry arrays.  Callers driving repeated sweeps pass a prebuilt ``context``
(the sort is O(nnz log nnz), pointless to redo per iteration), and a
``backend`` name selects the kernel execution strategy *inside* each worker
(see :mod:`repro.kernels.backends`; names travel over pickle, backend
objects need not).  A ``source=`` shard store
(:class:`~repro.shards.store.ShardStore`) replaces the in-RAM sorted arrays
entirely: worker slices are gathered straight from the memory-mapped shards.
"""

from __future__ import annotations

import logging
import os
from typing import List, Optional, Tuple

import numpy as np

from ..exceptions import WorkerFailureError
from ..fabric import FabricError, Task, TaskSupervisor
from ..kernels import (
    concatenated_segment_starts,
    resolve_backend,
    segment_positions,
)
from ..tensor.coo import SparseTensor
from ..core.row_update import ModeContext, build_mode_context
from .partition import partition_rows

logger = logging.getLogger(__name__)

#: Times a row subset is re-dispatched after worker deaths/hangs before the
#: update gives up with WorkerFailureError.
DEFAULT_MAX_RETRIES = 2

#: Fault-injection hook (tests only): when this environment variable names
#: a path, the first worker task to run creates it exclusively and kills
#: its own process with ``os._exit`` — exactly the abrupt death (no
#: exception, no cleanup) a SIGKILL or OOM-kill produces.  Because the
#: path then exists, every later attempt proceeds normally, giving the
#: chaos tests a deterministic die-once worker.
INJECT_WORKER_DEATH_ENV = "REPRO_INJECT_WORKER_DEATH"


def _maybe_inject_worker_death() -> None:
    sentinel = os.environ.get(INJECT_WORKER_DEATH_ENV, "")
    if not sentinel:
        return
    try:
        fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return  # already died once; behave normally from here on
    os.close(fd)
    os._exit(1)


def _update_row_subset(
    local_indices: np.ndarray,
    local_values: np.ndarray,
    segment_starts: np.ndarray,
    factors: List[np.ndarray],
    core: np.ndarray,
    mode: int,
    rows: np.ndarray,
    regularization: float,
    backend: str = "numpy",
) -> Tuple[np.ndarray, np.ndarray]:
    """Worker: solve the rows of one partition from its presliced entries.

    ``local_indices``/``local_values`` hold only this worker's entries,
    ordered so each row of ``rows`` is one contiguous segment starting at
    ``segment_starts``.  Returns ``(rows, new_row_values)``.
    """
    _maybe_inject_worker_death()
    kernel_backend = resolve_backend(backend)
    ne_kernel = kernel_backend.make_normal_equations_kernel(
        factors, core, mode, local_indices.shape[0]
    )
    b_matrices, c_vectors = ne_kernel(local_indices, local_values, segment_starts)
    return rows, kernel_backend.solve_rows(b_matrices, c_vectors, regularization)


def _update_row_subset_from_source(
    source,
    entry_positions: np.ndarray,
    segment_starts: np.ndarray,
    factors: List[np.ndarray],
    core: np.ndarray,
    mode: int,
    rows: np.ndarray,
    regularization: float,
    backend: str = "numpy",
) -> Tuple[np.ndarray, np.ndarray]:
    """Worker: gather this partition's entries from the shard store itself.

    The parent ships only the (rows-sized) entry positions; the worker maps
    the store's shards and gathers its own slice, so the parent never holds
    any partition's index/value copies — that is the out-of-core point.
    """
    local_indices, local_values = source.gather_mode_entries(mode, entry_positions)
    return _update_row_subset(
        local_indices,
        local_values,
        segment_starts,
        factors,
        core,
        mode,
        rows,
        regularization,
        backend,
    )


def _task_update_rows(context, payload):
    """Fabric task adapter for :func:`_update_row_subset`."""
    return _update_row_subset(*payload)


def _task_update_rows_from_source(context, payload):
    """Fabric task adapter for :func:`_update_row_subset_from_source`."""
    return _update_row_subset_from_source(*payload)


def parallel_update_factor_mode(
    tensor: Optional[SparseTensor],
    factors: List[np.ndarray],
    core: np.ndarray,
    mode: int,
    regularization: float,
    n_workers: int = 2,
    scheduling: str = "dynamic",
    supervisor: Optional[TaskSupervisor] = None,
    context: Optional[ModeContext] = None,
    backend: str = "numpy",
    source=None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    timeout: Optional[float] = None,
) -> np.ndarray:
    """Update ``A^(mode)`` using supervised worker processes.

    Rows are partitioned by their |Ω_in| cost under the requested scheduling
    policy, each worker solves its rows independently from a presliced
    segment of the mode-sorted entries, and the updated rows are merged into
    the factor matrix in place.  ``context`` reuses a prebuilt
    :class:`~repro.core.row_update.ModeContext` across sweeps instead of
    re-sorting the entries on every invocation.

    ``source`` slices each worker's entries out of an on-disk shard store
    (:class:`~repro.shards.store.ShardStore`) instead of in-RAM sorted
    arrays: the parent ships only row partitions and entry positions, and
    each *worker* gathers its own slice from the memory-mapped shards, so
    no process ever materialises more than one partition's entries.
    ``tensor`` / ``context`` may then be ``None``.

    The dispatch survives worker death: the fabric supervisor detects a
    worker that exited (SIGKILL, OOM-kill, crash), went silent (missed
    heartbeats: SIGSTOP, a wedged C call) or overran the per-task
    ``timeout``, respawns its slot with backoff, and re-dispatches *only
    the row subsets that never finished* — and because rows are
    independent the recovered update is identical to an undisturbed run.
    After ``max_retries`` re-dispatches of the same subset the attempt
    stops with a :class:`~repro.exceptions.WorkerFailureError` naming the
    mode and the outstanding rows.  Exceptions *raised* by a worker (a
    real bug, not a death) propagate immediately — retrying deterministic
    errors would only repeat them.

    ``supervisor`` shares a caller-owned
    :class:`~repro.fabric.TaskSupervisor` (and its warm worker pool)
    across sweeps; by default each call runs a private supervisor so
    environment changes (worker counts, fault-injection hooks) always
    apply to freshly spawned workers.
    """
    if source is not None:
        row_ids, row_starts, row_counts = source.mode_segmentation(mode)
    else:
        if context is None:
            if tensor is None:
                raise ValueError(
                    "provide a tensor, a prebuilt context, or a source"
                )
            context = build_mode_context(tensor, mode)
        row_ids, row_starts = context.row_ids, context.row_starts
        row_counts = context.row_counts
    if row_ids.shape[0] == 0:
        return factors[mode]

    partition = partition_rows(row_counts.astype(np.float64), n_workers, scheduling)

    factors_payload = [np.asarray(f) for f in factors]
    core_payload = np.asarray(core)
    jobs: List[np.ndarray] = []
    tasks: List[Task] = []
    for worker in range(partition.n_threads):
        positions = partition.thread_items(worker)
        if not positions.size:
            continue
        counts = row_counts[positions]
        entry_positions = segment_positions(row_starts[positions], counts)
        starts = concatenated_segment_starts(counts)
        rows = row_ids[positions]
        job_id = len(jobs)
        jobs.append(rows)
        if source is not None:
            tasks.append(
                Task(
                    key=job_id,
                    fn="repro.parallel.executor:_task_update_rows_from_source",
                    payload=(
                        source, entry_positions, starts, factors_payload,
                        core_payload, mode, rows, regularization, backend,
                    ),
                )
            )
        else:
            tasks.append(
                Task(
                    key=job_id,
                    fn="repro.parallel.executor:_task_update_rows",
                    payload=(
                        context.sorted_indices[entry_positions],
                        context.sorted_values[entry_positions],
                        starts, factors_payload, core_payload, mode, rows,
                        regularization, backend,
                    ),
                )
            )

    own_supervisor = supervisor is None
    if own_supervisor:
        supervisor = TaskSupervisor(
            n_workers,
            task_deadline=timeout,
            max_task_retries=max_retries,
            name=f"parallel-mode{mode}",
        )
    try:
        try:
            results = supervisor.run_tasks(tasks, deadline=timeout)
        except FabricError as exc:
            outstanding = _outstanding_rows(exc, jobs)
            raise WorkerFailureError(
                f"mode-{mode} parallel update failed: worker processes "
                f"died, hung or timed out until the re-dispatch budget ran "
                f"out (max_retries={max_retries}); {outstanding.shape[0]} "
                f"rows never finished (first few: "
                f"{outstanding[:8].tolist()}); supervisor said: {exc}"
            ) from exc
    finally:
        if own_supervisor:
            supervisor.shutdown()
    for rows, new_values in results:
        factors[mode][rows] = new_values
    return factors[mode]


def _outstanding_rows(exc: FabricError, jobs: List[np.ndarray]) -> np.ndarray:
    """Rows of the partitions a fabric failure left unfinished."""
    keys = getattr(exc, "keys", None)
    if keys is None:
        key = getattr(exc, "key", None)
        keys = [key] if key is not None else []
    job_ids = sorted(
        {key[1] for key in keys if isinstance(key, tuple) and len(key) == 2}
    )
    if not job_ids:
        return np.concatenate(jobs)
    return np.concatenate([jobs[job_id] for job_id in job_ids])
