"""Optional process-based parallel row updates.

The default P-Tucker path vectorises each mode update globally, which is the
fastest strategy for NumPy.  For completeness — and to demonstrate that the
row independence property of Section III-B really does permit parallel
execution — this module provides a process-pool executor that partitions the
rows of one mode across workers, updates each partition independently with
the same kernel, and merges the results.  Because rows are independent, the
merged factor matrix is identical (up to floating-point associativity) to the
serial result; a test asserts this.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..tensor.coo import SparseTensor
from ..core.row_update import (
    accumulate_normal_equations,
    build_mode_context,
    compute_delta_block,
    core_unfolding,
    solve_rows,
)
from .partition import partition_rows


def _update_row_subset(
    indices: np.ndarray,
    values: np.ndarray,
    shape: Tuple[int, ...],
    factors: List[np.ndarray],
    core: np.ndarray,
    mode: int,
    rows: np.ndarray,
    regularization: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Worker: compute updated rows for a subset of mode-``mode`` row indices.

    Returns ``(rows, new_row_values)``.  Module-level so it can be pickled by
    ``ProcessPoolExecutor``.
    """
    row_set = np.asarray(rows, dtype=np.int64)
    mask = np.isin(indices[:, mode], row_set)
    local_idx = indices[mask]
    local_val = values[mask]
    if local_idx.shape[0] == 0:
        return row_set, factors[mode][row_set]

    core_unf = core_unfolding(core, mode)
    deltas = compute_delta_block(local_idx, factors, core_unf, mode)
    # Map each entry to the position of its row inside row_set.
    order = np.argsort(row_set, kind="stable")
    sorted_rows = row_set[order]
    positions_sorted = np.searchsorted(sorted_rows, local_idx[:, mode])
    segment_of_entry = order[positions_sorted]
    b_matrices, c_vectors = accumulate_normal_equations(
        deltas, local_val, segment_of_entry, row_set.shape[0]
    )
    new_rows = factors[mode][row_set].copy()
    touched = np.unique(segment_of_entry)
    solved = solve_rows(b_matrices[touched], c_vectors[touched], regularization)
    new_rows[touched] = solved
    return row_set, new_rows


def parallel_update_factor_mode(
    tensor: SparseTensor,
    factors: List[np.ndarray],
    core: np.ndarray,
    mode: int,
    regularization: float,
    n_workers: int = 2,
    scheduling: str = "dynamic",
    executor: Optional[ProcessPoolExecutor] = None,
) -> np.ndarray:
    """Update ``A^(mode)`` using a pool of worker processes.

    Rows are partitioned by their |Ω_in| cost under the requested scheduling
    policy, each worker solves its rows independently, and the updated rows
    are merged into the factor matrix in place.
    """
    context = build_mode_context(tensor, mode)
    if context.row_ids.shape[0] == 0:
        return factors[mode]

    partition = partition_rows(
        context.row_counts.astype(np.float64), n_workers, scheduling
    )
    row_groups: List[np.ndarray] = [
        context.row_ids[partition.thread_items(worker)]
        for worker in range(partition.n_threads)
    ]
    row_groups = [group for group in row_groups if group.size]

    own_executor = executor is None
    pool = executor or ProcessPoolExecutor(max_workers=n_workers)
    try:
        futures = [
            pool.submit(
                _update_row_subset,
                tensor.indices,
                tensor.values,
                tensor.shape,
                [np.asarray(f) for f in factors],
                np.asarray(core),
                mode,
                group,
                regularization,
            )
            for group in row_groups
        ]
        for future in futures:
            rows, new_values = future.result()
            factors[mode][rows] = new_values
    finally:
        if own_executor:
            pool.shutdown()
    return factors[mode]
