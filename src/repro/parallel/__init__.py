"""Work partitioning, scheduling policies and the parallel cost simulator."""

from .executor import parallel_update_factor_mode
from .partition import (
    Partition,
    dynamic_partition,
    longest_processing_time_partition,
    partition_rows,
    split_evenly,
    static_partition,
)
from .scheduler import RowScheduler
from .simulator import ParallelSimulator, ThreadRunEstimate, efficiency

__all__ = [
    "Partition",
    "static_partition",
    "dynamic_partition",
    "longest_processing_time_partition",
    "partition_rows",
    "split_evenly",
    "RowScheduler",
    "ParallelSimulator",
    "ThreadRunEstimate",
    "efficiency",
    "parallel_update_factor_mode",
]
