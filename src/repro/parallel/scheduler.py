"""Thread scheduling model used by the P-Tucker solvers.

The paper's implementation runs the row updates under OpenMP with dynamic
scheduling (Section III-D).  In this Python reproduction the numerical work
is vectorised globally, so a real thread pool would not change the results;
what Figure 10 measures — speed-up versus thread count and the benefit of
dynamic over static scheduling — is a property of how per-row workloads
distribute over threads.  :class:`RowScheduler` records the per-row workloads
seen during a run and answers "what would the parallel time be with T threads
under policy P", which the parallel-scalability experiment then combines with
the measured serial time (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from .partition import Partition, partition_rows


@dataclass
class RowScheduler:
    """Records row workloads and evaluates scheduling policies over them.

    Attributes
    ----------
    n_threads:
        Number of threads the run is configured with.
    scheduling:
        Policy used for the factor-matrix updates (paper default: dynamic).
    per_item_overhead:
        Fixed cost charged per row in addition to its |Ω_in| share; models the
        J³ solve that every row pays regardless of how many entries it has.
    """

    n_threads: int = 1
    scheduling: str = "dynamic"
    per_item_overhead: float = 1.0
    mode_workloads: List[np.ndarray] = field(default_factory=list)

    def record_mode(self, row_counts: Sequence[int]) -> None:
        """Record the |Ω^{(n)}_{i_n}| distribution of one factor update."""
        self.mode_workloads.append(np.asarray(row_counts, dtype=np.float64))

    # ------------------------------------------------------------------
    def _costs(self, workload: np.ndarray) -> np.ndarray:
        return workload + self.per_item_overhead

    def partition_mode(
        self, mode_position: int, n_threads: int = 0, scheduling: str = ""
    ) -> Partition:
        """Partition of one recorded mode under a policy/thread count."""
        workload = self.mode_workloads[mode_position]
        return partition_rows(
            self._costs(workload),
            n_threads or self.n_threads,
            scheduling or self.scheduling,
        )

    def makespan(self, n_threads: int = 0, scheduling: str = "") -> float:
        """Total parallel cost across all recorded modes (sum of makespans)."""
        total = 0.0
        for position in range(len(self.mode_workloads)):
            total += self.partition_mode(position, n_threads, scheduling).makespan()
        return total

    def serial_cost(self) -> float:
        """Total single-thread cost across all recorded modes."""
        return float(
            sum(self._costs(workload).sum() for workload in self.mode_workloads)
        )

    def speedup(self, n_threads: int, scheduling: str = "") -> float:
        """Predicted speed-up Time_1 / Time_T for the recorded workloads."""
        parallel = self.makespan(n_threads, scheduling)
        if parallel == 0.0:
            return 1.0
        return self.serial_cost() / parallel

    def speedup_curve(
        self, thread_counts: Sequence[int], scheduling: str = ""
    ) -> Dict[int, float]:
        """Speed-up for each requested thread count (Figure 10, left panel)."""
        return {int(t): self.speedup(int(t), scheduling) for t in thread_counts}

    def scheduling_comparison(self, n_threads: int) -> Dict[str, float]:
        """Makespan under each policy at a fixed thread count (Section IV-D)."""
        return {
            policy: self.makespan(n_threads, policy)
            for policy in ("static", "dynamic", "lpt")
        }
