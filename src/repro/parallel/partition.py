"""Row-to-thread partitioning strategies (Section III-D of the paper).

P-Tucker updates all rows of a factor matrix in parallel; because the cost of
updating row ``i_n`` is proportional to |Ω^{(n)}_{i_n}|, how rows are assigned
to threads determines the load balance and therefore the speed-up.  The paper
uses OpenMP *static* scheduling where work per item is uniform (the cache
table and the error computation) and *dynamic* scheduling for the factor-row
updates, whose per-row cost varies.

This module implements both assignment policies over an explicit cost array so
the scheduling behaviour can be measured, simulated and tested independently
of any real thread pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Partition:
    """Assignment of work items (rows) to threads.

    Attributes
    ----------
    assignments:
        ``assignments[i]`` is the thread that owns item ``i``.
    n_threads:
        Number of threads the items were distributed over.
    costs:
        The per-item costs the partition was computed from.
    """

    assignments: np.ndarray
    n_threads: int
    costs: np.ndarray

    def thread_items(self, thread: int) -> np.ndarray:
        """Indices of the items assigned to ``thread``."""
        return np.nonzero(self.assignments == thread)[0]

    def thread_loads(self) -> np.ndarray:
        """Total cost assigned to each thread."""
        loads = np.zeros(self.n_threads, dtype=np.float64)
        np.add.at(loads, self.assignments, self.costs)
        return loads

    def makespan(self) -> float:
        """Parallel completion time: the maximum per-thread load."""
        loads = self.thread_loads()
        return float(loads.max()) if loads.size else 0.0

    def imbalance(self) -> float:
        """Max load divided by mean load (1.0 is a perfect balance)."""
        loads = self.thread_loads()
        mean = float(loads.mean()) if loads.size else 0.0
        if mean == 0.0:
            return 1.0
        return float(loads.max()) / mean


def static_partition(costs: Sequence[float], n_threads: int) -> Partition:
    """OpenMP-style static scheduling: contiguous equal-count chunks.

    Items are split into ``n_threads`` contiguous blocks of (near) equal
    *count*, ignoring their individual costs — cheap to compute, but
    imbalanced when costs are skewed.
    """
    costs_arr = np.asarray(costs, dtype=np.float64)
    n_items = costs_arr.shape[0]
    n_threads = max(1, int(n_threads))
    boundaries = np.linspace(0, n_items, n_threads + 1).astype(np.int64)
    assignments = np.zeros(n_items, dtype=np.int64)
    for thread in range(n_threads):
        assignments[boundaries[thread] : boundaries[thread + 1]] = thread
    return Partition(assignments=assignments, n_threads=n_threads, costs=costs_arr)


def dynamic_partition(
    costs: Sequence[float], n_threads: int, chunk_size: int = 1
) -> Partition:
    """OpenMP-style dynamic scheduling simulated as greedy chunk dispatch.

    Chunks of ``chunk_size`` consecutive items are handed, in order, to the
    thread that currently has the smallest accumulated load — the work-stealing
    behaviour of ``schedule(dynamic)`` idealised without timing noise.  This
    balances skewed costs far better than the static split.
    """
    costs_arr = np.asarray(costs, dtype=np.float64)
    n_items = costs_arr.shape[0]
    n_threads = max(1, int(n_threads))
    chunk_size = max(1, int(chunk_size))
    assignments = np.zeros(n_items, dtype=np.int64)
    loads = np.zeros(n_threads, dtype=np.float64)
    for start in range(0, n_items, chunk_size):
        stop = min(start + chunk_size, n_items)
        thread = int(np.argmin(loads))
        assignments[start:stop] = thread
        loads[thread] += float(costs_arr[start:stop].sum())
    return Partition(assignments=assignments, n_threads=n_threads, costs=costs_arr)


def longest_processing_time_partition(
    costs: Sequence[float], n_threads: int
) -> Partition:
    """LPT greedy partition: best static balance achievable without chunking.

    Sorts items by decreasing cost and assigns each to the least-loaded
    thread.  Used as an upper-bound reference when evaluating the scheduling
    policies in the Figure 10 ablation.
    """
    costs_arr = np.asarray(costs, dtype=np.float64)
    n_threads = max(1, int(n_threads))
    order = np.argsort(-costs_arr, kind="stable")
    assignments = np.zeros(costs_arr.shape[0], dtype=np.int64)
    loads = np.zeros(n_threads, dtype=np.float64)
    for item in order:
        thread = int(np.argmin(loads))
        assignments[item] = thread
        loads[thread] += float(costs_arr[item])
    return Partition(assignments=assignments, n_threads=n_threads, costs=costs_arr)


def partition_rows(
    costs: Sequence[float], n_threads: int, scheduling: str = "dynamic"
) -> Partition:
    """Dispatch to the requested scheduling policy."""
    if scheduling == "static":
        return static_partition(costs, n_threads)
    if scheduling == "dynamic":
        return dynamic_partition(costs, n_threads)
    if scheduling == "lpt":
        return longest_processing_time_partition(costs, n_threads)
    raise ValueError(f"unknown scheduling policy {scheduling!r}")


def split_evenly(n_items: int, n_threads: int) -> List[Tuple[int, int]]:
    """Half-open (start, stop) ranges splitting ``n_items`` across threads."""
    boundaries = np.linspace(0, n_items, max(1, int(n_threads)) + 1).astype(np.int64)
    return [
        (int(boundaries[t]), int(boundaries[t + 1])) for t in range(len(boundaries) - 1)
    ]
