"""Parallel-execution cost simulator for the thread-scalability experiments.

The paper's Figure 10 reports speed-up (Time_1 / Time_T) and memory versus the
number of OpenMP threads on a 20-core machine, and Section IV-D reports a 1.5x
gain of dynamic over naive (static) scheduling.  A pure-Python build cannot
reproduce those wall-clock numbers directly, so — per the substitution policy
in DESIGN.md — this simulator derives them from quantities the run *does*
produce:

* the measured serial per-entry update cost (seconds per observed entry),
* the per-row workload distribution |Ω^{(n)}_{i_n}| recorded by
  :class:`~repro.parallel.scheduler.RowScheduler`,
* the per-thread intermediate-memory footprint O(J^2) of Theorem 4.

The simulated parallel time of one iteration is the scheduling makespan over
those workloads scaled by the measured per-unit cost, plus a configurable
synchronisation overhead per mode.  This preserves exactly the effects the
paper attributes to its parallel design: near-linear speed-up while workloads
stay balanced, and the gap between static and dynamic scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..metrics.memory import BYTES_PER_FLOAT
from .scheduler import RowScheduler


@dataclass(frozen=True)
class ThreadRunEstimate:
    """Simulated execution of one configuration (thread count + policy)."""

    n_threads: int
    scheduling: str
    parallel_seconds: float
    serial_seconds: float
    speedup: float
    memory_bytes: float


class ParallelSimulator:
    """Estimates parallel times from a recorded serial run.

    Parameters
    ----------
    scheduler:
        The :class:`RowScheduler` populated during a serial solve; it holds
        the per-row workload distribution of every factor update.
    serial_seconds:
        Measured wall-clock seconds of the serial work being parallelised
        (typically the mean per-iteration factor-update time).
    sync_overhead_seconds:
        Barrier/fork-join overhead charged once per recorded mode per
        iteration; keeps speed-up from being perfectly linear, as in the
        paper's measurements.
    rank:
        Tucker rank J used to size the per-thread intermediate memory.
    """

    def __init__(
        self,
        scheduler: RowScheduler,
        serial_seconds: float,
        sync_overhead_seconds: float = 0.0,
        rank: int = 10,
    ) -> None:
        if serial_seconds < 0:
            raise ValueError("serial_seconds must be non-negative")
        self.scheduler = scheduler
        self.serial_seconds = float(serial_seconds)
        self.sync_overhead_seconds = float(sync_overhead_seconds)
        self.rank = int(rank)

    # ------------------------------------------------------------------
    def _seconds_per_unit(self) -> float:
        total_cost = self.scheduler.serial_cost()
        if total_cost == 0.0:
            return 0.0
        return self.serial_seconds / total_cost

    def estimate(self, n_threads: int, scheduling: str = "") -> ThreadRunEstimate:
        """Simulate a run with ``n_threads`` under the given policy."""
        policy = scheduling or self.scheduler.scheduling
        unit = self._seconds_per_unit()
        makespan = self.scheduler.makespan(n_threads, policy)
        n_modes = len(self.scheduler.mode_workloads)
        parallel = makespan * unit + n_modes * self.sync_overhead_seconds
        serial = self.serial_seconds + n_modes * self.sync_overhead_seconds
        speedup = serial / parallel if parallel > 0 else 1.0
        memory = self.memory_bytes(n_threads)
        return ThreadRunEstimate(
            n_threads=int(n_threads),
            scheduling=policy,
            parallel_seconds=parallel,
            serial_seconds=serial,
            speedup=speedup,
            memory_bytes=memory,
        )

    def memory_bytes(self, n_threads: int) -> float:
        """Per-thread intermediate data of Theorem 4: O(T J^2)."""
        j = self.rank
        return float(n_threads) * (2 * j * j + 2 * j) * BYTES_PER_FLOAT

    def speedup_curve(
        self, thread_counts: Sequence[int], scheduling: str = ""
    ) -> Dict[int, ThreadRunEstimate]:
        """Estimates for every requested thread count (Figure 10)."""
        return {int(t): self.estimate(int(t), scheduling) for t in thread_counts}

    def scheduling_gain(self, n_threads: int) -> float:
        """Static-over-dynamic time ratio at ``n_threads`` (Section IV-D)."""
        dynamic = self.estimate(n_threads, "dynamic").parallel_seconds
        static = self.estimate(n_threads, "static").parallel_seconds
        if dynamic == 0.0:
            return 1.0
        return static / dynamic


def efficiency(estimates: Dict[int, ThreadRunEstimate]) -> Dict[int, float]:
    """Parallel efficiency (speed-up / threads) for a speed-up curve."""
    return {
        threads: est.speedup / threads if threads > 0 else 1.0
        for threads, est in estimates.items()
    }
