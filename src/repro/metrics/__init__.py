"""Accuracy, memory and timing metrics."""

from .errors import (
    error_and_loss,
    fit,
    reconstruction_error,
    regularized_loss,
    residuals,
    rmse_of_values,
    test_rmse,
)
from .environment import bench_environment, blas_thread_count
from .memory import BYTES_PER_FLOAT, MemoryModel, MemoryTracker, TensorAttributes
from .timing import Counters, IterationTimer, LatencyWindow, Stopwatch, percentile

__all__ = [
    "reconstruction_error",
    "test_rmse",
    "regularized_loss",
    "error_and_loss",
    "residuals",
    "fit",
    "rmse_of_values",
    "MemoryModel",
    "MemoryTracker",
    "TensorAttributes",
    "BYTES_PER_FLOAT",
    "IterationTimer",
    "Stopwatch",
    "Counters",
    "LatencyWindow",
    "percentile",
    "bench_environment",
    "blas_thread_count",
]
