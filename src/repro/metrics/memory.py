"""Intermediate-data memory accounting (Definition 7 and Table III).

The paper defines *intermediate data* as the memory an algorithm needs while
updating factor matrices, excluding the tensor, core and factors themselves,
and compares methods by that quantity (Table III).  Competitors that exceed
the machine's 512 GB show up as "O.O.M." in Figures 6, 7 and 11.

This module provides two pieces:

* :class:`MemoryModel` — closed-form intermediate-data estimates for every
  algorithm in Table III, given the tensor attributes.  These are the
  formulas of the paper evaluated in bytes (8-byte floats).
* :class:`MemoryTracker` — a runtime accountant that solvers report their
  actual intermediate allocations to.  It records the peak and can enforce a
  budget, raising :class:`~repro.exceptions.OutOfMemoryError` exactly where
  the real implementation would have died.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..exceptions import OutOfMemoryError

BYTES_PER_FLOAT = 8


def _prod(values: Sequence[int]) -> float:
    out = 1.0
    for v in values:
        out *= float(v)
    return out


@dataclass(frozen=True)
class TensorAttributes:
    """The attributes Table III expresses complexities in."""

    shape: Sequence[int]
    ranks: Sequence[int]
    nnz: int

    @property
    def order(self) -> int:
        return len(self.shape)

    @property
    def max_dim(self) -> float:
        return float(max(self.shape))

    @property
    def max_rank(self) -> float:
        return float(max(self.ranks))

    @property
    def core_size(self) -> float:
        return _prod(self.ranks)


class MemoryModel:
    """Closed-form intermediate-data estimates for each algorithm (Table III).

    All estimates are returned in bytes assuming 8-byte floats.  ``threads``
    matters only for P-Tucker, whose intermediate data are per-thread
    (Theorem 4: O(T·J²)).
    """

    def __init__(self, threads: int = 1) -> None:
        if threads < 1:
            raise ValueError("threads must be at least 1")
        self.threads = int(threads)

    def p_tucker(self, attrs: TensorAttributes) -> float:
        """O(T J^2): per-thread row-update workspace (Theorem 4)."""
        j = attrs.max_rank
        return self.threads * (2 * j * j + 2 * j) * BYTES_PER_FLOAT

    def p_tucker_cache(self, attrs: TensorAttributes) -> float:
        """O(|Ω| J^N): the cache table Pres (Theorem 6)."""
        return attrs.nnz * attrs.core_size * BYTES_PER_FLOAT

    def p_tucker_approx(self, attrs: TensorAttributes) -> float:
        """O(J^N): per-entry partial errors R(β) over the core (Theorem 8)."""
        return attrs.core_size * 2 * BYTES_PER_FLOAT

    def tucker_als(self, attrs: TensorAttributes) -> float:
        """O(I J^{N-1}): the dense unfolded intermediate Y_(n) of Algorithm 1."""
        j = attrs.max_rank
        return attrs.max_dim * j ** (attrs.order - 1) * BYTES_PER_FLOAT

    def tucker_wopt(self, attrs: TensorAttributes) -> float:
        """O(I^{N-1} J): dense gradient intermediates over the full grid."""
        return attrs.max_dim ** (attrs.order - 1) * attrs.max_rank * BYTES_PER_FLOAT

    def tucker_csf(self, attrs: TensorAttributes) -> float:
        """O(I J^{N-1}): CSF accelerates TTMc but still materialises Y_(n)."""
        j = attrs.max_rank
        return attrs.max_dim * j ** (attrs.order - 1) * BYTES_PER_FLOAT

    def s_hot(self, attrs: TensorAttributes) -> float:
        """O(J^{N-1} x J^{N-1}): the on-the-fly Gram matrix, no dense Y_(n)."""
        j = attrs.max_rank
        width = j ** (attrs.order - 1)
        return width * width * BYTES_PER_FLOAT

    def estimate(self, algorithm: str, attrs: TensorAttributes) -> float:
        """Dispatch by algorithm name (case-insensitive, hyphens ignored)."""
        key = algorithm.lower().replace("-", "_").replace(" ", "_")
        table = {
            "p_tucker": self.p_tucker,
            "ptucker": self.p_tucker,
            "p_tucker_cache": self.p_tucker_cache,
            "p_tucker_approx": self.p_tucker_approx,
            "tucker_als": self.tucker_als,
            "hooi": self.tucker_als,
            "tucker_wopt": self.tucker_wopt,
            "tucker_csf": self.tucker_csf,
            "s_hot": self.s_hot,
            "s_hotscan": self.s_hot,
        }
        if key not in table:
            raise KeyError(f"unknown algorithm {algorithm!r}")
        return table[key](attrs)


@dataclass
class MemoryTracker:
    """Runtime accountant for intermediate-data allocations.

    Solvers call :meth:`allocate` when they create an intermediate array and
    :meth:`release` when it goes away; ``peak_bytes`` then records the high
    watermark of intermediate data.  When ``budget_bytes`` is set, exceeding
    it raises :class:`OutOfMemoryError`, which lets the experiments reproduce
    the paper's O.O.M. outcomes deterministically.
    """

    budget_bytes: Optional[int] = None
    current_bytes: int = 0
    peak_bytes: int = 0
    allocations: Dict[str, int] = field(default_factory=dict)

    def allocate(self, n_bytes: float, what: str = "intermediate") -> None:
        """Record an allocation of ``n_bytes`` (fractional values are rounded up)."""
        n = int(np.ceil(float(n_bytes)))
        if n < 0:
            raise ValueError("cannot allocate a negative number of bytes")
        self.current_bytes += n
        self.allocations[what] = self.allocations.get(what, 0) + n
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)
        if self.budget_bytes is not None and self.current_bytes > self.budget_bytes:
            raise OutOfMemoryError(self.current_bytes, self.budget_bytes, what)

    def allocate_array(self, shape: Sequence[int], what: str = "intermediate") -> None:
        """Record an allocation for a float64 array of the given shape."""
        self.allocate(_prod(shape) * BYTES_PER_FLOAT, what)

    def release(self, n_bytes: float, what: str = "intermediate") -> None:
        """Record the release of previously allocated bytes."""
        n = int(np.ceil(float(n_bytes)))
        self.current_bytes = max(0, self.current_bytes - n)
        if what in self.allocations:
            self.allocations[what] = max(0, self.allocations[what] - n)

    def release_array(self, shape: Sequence[int], what: str = "intermediate") -> None:
        """Release the bytes of a float64 array of the given shape."""
        self.release(_prod(shape) * BYTES_PER_FLOAT, what)

    def release_all(self) -> None:
        """Drop every recorded allocation (end of an update phase)."""
        self.current_bytes = 0
        self.allocations.clear()

    @property
    def peak_megabytes(self) -> float:
        """Peak intermediate data in MB, the unit used by Figure 8(b)."""
        return self.peak_bytes / (1024.0 * 1024.0)
