"""Benchmark environment honesty: one shared hardware/runtime snapshot.

Every benchmark artifact this repository commits (``BENCH_kernels.json``,
``BENCH_serving.json``) embeds the dictionary returned by
:func:`bench_environment`, so a reader can always tell *what machine* a
number was recorded on.  The crucial field is ``single_cpu_caveat``: CI
containers expose one CPU, which makes the ``threaded``/``numba`` parallel
columns and any QPS figure degenerate — a 1-CPU artifact must never be
mistaken for a multicore result, and with this flag it cannot be, because
the caveat travels inside the file instead of living in a doc footnote.

:func:`blas_thread_count` lives here (re-exported by
:mod:`repro.kernels.microbench` for compatibility) because BLAS threading
changes what a fair per-backend or per-batch-size comparison means.
"""

from __future__ import annotations

import os
import platform
from typing import Dict, Optional

import numpy as np


def blas_thread_count() -> Optional[int]:
    """Best-effort number of BLAS threads numpy will use.

    Tries ``threadpoolctl`` (authoritative) first, then the conventional
    environment variables; recorded per benchmark run because BLAS
    threading changes what a fair per-backend comparison means.
    """
    try:
        from threadpoolctl import threadpool_info
    except ImportError:
        pass
    else:
        counts = [
            info.get("num_threads")
            for info in threadpool_info()
            if info.get("user_api") == "blas"
        ]
        counts = [c for c in counts if c]
        if counts:
            return int(max(counts))
    for variable in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS"):
        value = os.environ.get(variable)
        if value and value.isdigit():
            return int(value)
    return None


def bench_environment() -> Dict[str, object]:
    """The environment block every ``BENCH_*.json`` artifact embeds.

    ``single_cpu_caveat`` is True when the container exposes one CPU (or
    the BLAS is pinned to one thread): every wall-clock figure in the
    artifact then reflects serialized execution, and parallel-backend or
    throughput columns understate multicore hardware.
    """
    cpu_count = os.cpu_count()
    blas_threads = blas_thread_count()
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": cpu_count,
        "blas_threads": blas_threads,
        "single_cpu_caveat": bool(
            (cpu_count or 1) <= 1 or (blas_threads is not None and blas_threads <= 1)
        ),
    }
