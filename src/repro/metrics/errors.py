"""Accuracy metrics used in the paper's evaluation.

* :func:`reconstruction_error` — Eq. (5): the root of the summed squared
  residuals over the observed entries Ω (the paper reports this on the
  training set).
* :func:`test_rmse` — root mean square error of the predictions on a held-out
  set of observed entries (Figure 11, right panel).
* :func:`regularized_loss` — the full objective of Eq. (6), used by the
  convergence tests (Theorem 2 asserts it is monotonically non-increasing).
* :func:`error_and_loss` — Eqs. (5) and (6) from a single residual pass, so
  a solver iteration reconstructs the observed entries exactly once.
* :func:`error_and_loss_stream` — the same metrics over a *stream* of
  entry blocks, so an out-of-core fit never materialises the residual
  vector (the sharded executor feeds it shard-store blocks).
* :func:`fit` — the conventional "fit" score ``1 - ||residual|| / ||X||``.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from ..kernels import make_value_contractor
from ..tensor.coo import SparseTensor
from ..tensor.operations import sparse_reconstruct

#: Entries reconstructed per residual block — matches
#: :func:`repro.tensor.operations.sparse_reconstruct`'s chunking, so the
#: in-core and streamed metrics accumulate over identical block boundaries.
RECONSTRUCT_BLOCK_SIZE = 262_144


def residuals(
    tensor: SparseTensor, core: np.ndarray, factors: Sequence[np.ndarray]
) -> np.ndarray:
    """Observed value minus model prediction at every observed entry."""
    predictions = sparse_reconstruct(tensor, core, factors)
    return tensor.values - predictions


def reconstruction_error(
    tensor: SparseTensor, core: np.ndarray, factors: Sequence[np.ndarray]
) -> float:
    """Reconstruction error of Eq. (5): sqrt of the sum of squared residuals."""
    return error_and_loss(tensor, core, factors, 0.0)[0]


def test_rmse(
    tensor: SparseTensor, core: np.ndarray, factors: Sequence[np.ndarray]
) -> float:
    """Root mean square error of predictions over the entries of ``tensor``."""
    if tensor.nnz == 0:
        return 0.0
    res = residuals(tensor, core, factors)
    return float(np.sqrt(np.mean(res * res)))


def regularized_loss(
    tensor: SparseTensor,
    core: np.ndarray,
    factors: Sequence[np.ndarray],
    regularization: float,
) -> float:
    """The sparse Tucker objective of Eq. (6): squared error + L2 penalty."""
    return error_and_loss(tensor, core, factors, regularization)[1]


def error_and_loss(
    tensor: SparseTensor,
    core: np.ndarray,
    factors: Sequence[np.ndarray],
    regularization: float,
) -> Tuple[float, float]:
    """Reconstruction error (Eq. 5) and regularised loss (Eq. 6) together.

    Both metrics are derived from one residual evaluation, halving the
    per-iteration reconstruction cost compared to evaluating them
    separately.  This is the single implementation of the objective
    (:func:`reconstruction_error` and :func:`regularized_loss` are thin
    wrappers, and the streamed variant below shares the accumulation), so
    the in-core and out-of-core fits report bitwise-identical metrics for
    the same entry order.
    """

    def blocks() -> Iterable[Tuple[np.ndarray, np.ndarray]]:
        for start in range(0, tensor.nnz, RECONSTRUCT_BLOCK_SIZE):
            stop = min(start + RECONSTRUCT_BLOCK_SIZE, tensor.nnz)
            yield tensor.indices[start:stop], tensor.values[start:stop]

    return error_and_loss_stream(
        blocks(), core, factors, regularization, expected_entries=tensor.nnz
    )


def error_and_loss_stream(
    blocks: Iterable[Tuple[np.ndarray, np.ndarray]],
    core: np.ndarray,
    factors: Sequence[np.ndarray],
    regularization: float,
    expected_entries: int,
) -> Tuple[float, float]:
    """Eqs. (5) and (6) over a stream of ``(indices, values)`` entry blocks.

    ``blocks`` yields chunks of observed entries (any partition into
    consecutive blocks works; :data:`RECONSTRUCT_BLOCK_SIZE` chunks match
    the in-core metric bit for bit).  Squared residuals are accumulated
    per block, so only one block is ever resident — this is the metric the
    sharded executor evaluates from memory-mapped shards.
    ``expected_entries`` sizes the contraction plan exactly as the in-core
    path does (it must be the total entry count of the stream).
    """
    contractor = make_value_contractor(factors, core, expected_entries)
    squared = 0.0
    for indices_block, values_block in blocks:
        # The contractor consumes narrow columnar blocks directly; forcing
        # ndarray here would widen every streamed block to int64.
        res = np.asarray(values_block, dtype=np.float64) - contractor(
            indices_block
        )
        squared += float(np.sum(res * res))
    penalty = (
        sum(float(np.sum(np.square(f))) for f in factors) if regularization else 0.0
    )
    return float(np.sqrt(squared)), squared + regularization * penalty


def fit(
    tensor: SparseTensor, core: np.ndarray, factors: Sequence[np.ndarray]
) -> float:
    """Fit score ``1 - ||X - X̂||_Ω / ||X||_Ω`` (1 is a perfect reconstruction)."""
    denom = tensor.norm()
    if denom == 0.0:
        return 1.0
    return 1.0 - reconstruction_error(tensor, core, factors) / denom


def rmse_of_values(observed: np.ndarray, predicted: np.ndarray) -> float:
    """Plain RMSE between two aligned value arrays."""
    observed = np.asarray(observed, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    if observed.shape != predicted.shape:
        raise ValueError("observed and predicted arrays must have the same shape")
    if observed.size == 0:
        return 0.0
    diff = observed - predicted
    return float(np.sqrt(np.mean(diff * diff)))
