"""Timing helpers shared by the solvers and the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List


@dataclass
class Stopwatch:
    """Accumulates named wall-clock durations.

    Solvers use one stopwatch per run to attribute time to phases
    ("update-factors", "error", "truncate-core"), which the experiments then
    report as per-iteration times.
    """

    durations: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        """Context manager adding the elapsed time under ``label``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.durations[label] = self.durations.get(label, 0.0) + elapsed
            self.counts[label] = self.counts.get(label, 0) + 1

    def total(self) -> float:
        """Total time across all labels."""
        return float(sum(self.durations.values()))

    def mean(self, label: str) -> float:
        """Mean duration of one occurrence of ``label`` (0 when never seen)."""
        count = self.counts.get(label, 0)
        if count == 0:
            return 0.0
        return self.durations[label] / count


@dataclass
class IterationTimer:
    """Per-iteration wall-clock times of an ALS run.

    The paper reports *average elapsed time per iteration* (Section IV-A3);
    :attr:`mean_seconds` is that number.
    """

    seconds: List[float] = field(default_factory=list)

    @contextmanager
    def iteration(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.seconds.append(time.perf_counter() - start)

    @property
    def mean_seconds(self) -> float:
        if not self.seconds:
            return 0.0
        return float(sum(self.seconds) / len(self.seconds))

    @property
    def total_seconds(self) -> float:
        return float(sum(self.seconds))
