"""Timing and counting helpers shared by solvers, benchmarks and serving.

:class:`Stopwatch` and :class:`IterationTimer` back the fit side;
:class:`Counters` and :class:`LatencyWindow` are the one structured-stats
mechanism every serving component reports through — the LRU caches count
hits/misses/evictions in a :class:`Counters`, the micro-batcher counts
batch occupancy in another, and the server's request latencies accumulate
in a :class:`LatencyWindow` whose :meth:`~LatencyWindow.snapshot` yields
the p50/p99/mean milliseconds the ``/stats`` endpoint serves.  Components
never grow ad-hoc counter dicts of their own; they hold one of these and
expose its snapshot.
"""

from __future__ import annotations

import math
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List


@dataclass
class Stopwatch:
    """Accumulates named wall-clock durations.

    Solvers use one stopwatch per run to attribute time to phases
    ("update-factors", "error", "truncate-core"), which the experiments then
    report as per-iteration times.
    """

    durations: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        """Context manager adding the elapsed time under ``label``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.durations[label] = self.durations.get(label, 0.0) + elapsed
            self.counts[label] = self.counts.get(label, 0) + 1

    def total(self) -> float:
        """Total time across all labels."""
        return float(sum(self.durations.values()))

    def mean(self, label: str) -> float:
        """Mean duration of one occurrence of ``label`` (0 when never seen)."""
        count = self.counts.get(label, 0)
        if count == 0:
            return 0.0
        return self.durations[label] / count


@dataclass
class IterationTimer:
    """Per-iteration wall-clock times of an ALS run.

    The paper reports *average elapsed time per iteration* (Section IV-A3);
    :attr:`mean_seconds` is that number.
    """

    seconds: List[float] = field(default_factory=list)

    @contextmanager
    def iteration(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.seconds.append(time.perf_counter() - start)

    @property
    def mean_seconds(self) -> float:
        if not self.seconds:
            return 0.0
        return float(sum(self.seconds) / len(self.seconds))

    @property
    def total_seconds(self) -> float:
        return float(sum(self.seconds))


@dataclass
class Counters:
    """Named monotonic event counters with a structured snapshot.

    The serving layer's shared counting mechanism: the LRU caches, the
    micro-batcher and the server all record their events here, and the
    ``/stats`` endpoint renders :meth:`snapshot` dictionaries — there is
    deliberately no second counter type anywhere in :mod:`repro.serve`.
    """

    values: Dict[str, int] = field(default_factory=dict)

    def add(self, label: str, amount: int = 1) -> None:
        """Add ``amount`` events under ``label``."""
        self.values[label] = self.values.get(label, 0) + int(amount)

    def get(self, label: str) -> int:
        """Current count of ``label`` (0 when never seen)."""
        return self.values.get(label, 0)

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator`` as a float, 0.0 on an empty denominator."""
        bottom = self.get(denominator)
        if bottom == 0:
            return 0.0
        return self.get(numerator) / bottom

    def snapshot(self) -> Dict[str, int]:
        """A JSON-ready copy of every counter."""
        return dict(self.values)


def percentile(sorted_values: List[float], fraction: float) -> float:
    """Linear-interpolation percentile of an ascending-sorted list.

    Matches ``numpy.percentile``'s default (linear) method; kept
    dependency-free so stats snapshots never import numpy on the server's
    hot path.  Returns ``nan`` for an empty list.
    """
    if not sorted_values:
        return float("nan")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    rank = (len(sorted_values) - 1) * min(max(fraction, 0.0), 1.0)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(sorted_values[low])
    weight = rank - low
    return float(sorted_values[low] * (1.0 - weight) + sorted_values[high] * weight)


@dataclass
class LatencyWindow:
    """A sliding window of request durations with percentile snapshots.

    Serving latency is long-tailed, so the window keeps the most recent
    ``maxlen`` samples (deque-backed, O(1) per record) rather than a lossy
    running mean; :meth:`snapshot` reports count/mean/p50/p99/max in
    milliseconds, which is what ``BENCH_serving.json`` and the server's
    ``/stats`` endpoint both publish.
    """

    maxlen: int = 4096
    total_count: int = 0
    total_seconds: float = 0.0
    samples: Deque[float] = field(default_factory=deque)

    def __post_init__(self) -> None:
        self.samples = deque(self.samples, maxlen=self.maxlen)

    def record(self, seconds: float) -> None:
        """Add one request duration in seconds."""
        self.samples.append(float(seconds))
        self.total_count += 1
        self.total_seconds += float(seconds)

    @contextmanager
    def measure(self) -> Iterator[None]:
        """Context manager recording the elapsed wall-clock time."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(time.perf_counter() - start)

    def snapshot(self) -> Dict[str, float]:
        """JSON-ready latency summary (milliseconds) over the window."""
        window = sorted(self.samples)
        mean = (sum(window) / len(window)) if window else float("nan")
        return {
            "count": self.total_count,
            "window": len(window),
            "mean_ms": mean * 1e3 if window else float("nan"),
            "p50_ms": percentile(window, 0.50) * 1e3,
            "p90_ms": percentile(window, 0.90) * 1e3,
            "p99_ms": percentile(window, 0.99) * 1e3,
            "max_ms": window[-1] * 1e3 if window else float("nan"),
        }
