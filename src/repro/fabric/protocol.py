"""Length-prefixed pipe protocol between the supervisor and its workers.

Every message on the wire is one **frame**::

    +-------+------+----------------+-----------------+
    | magic | kind | payload length |     payload     |
    | 0xF5  | u8   | u32 (little)   |  pickled object |
    +-------+------+----------------+-----------------+

The 6-byte header is fixed (:data:`HEADER`), the payload is a pickle of
the message object.  Length prefixing makes the stream self-delimiting —
a reader never guesses where a message ends — and the magic byte turns
stream corruption (a worker writing stray bytes onto the protocol
channel) into an immediate :class:`ProtocolError` naming the bad byte
instead of a silent mis-parse.  The worker guards against the common
cause by re-pointing ``stdout`` at ``stderr`` on startup and keeping the
protocol channel on a private duplicated descriptor, so library
``print()`` calls cannot interleave with frames.

Frame kinds (:class:`FrameKind`):

=============  =========  ====================================================
kind           direction  payload
=============  =========  ====================================================
``HELLO``      w -> s     ``{"pid": int}`` — first frame after startup
``HEARTBEAT``  w -> s     current task key or ``None`` — periodic liveness
``RESULT``     w -> s     ``(task_key, result)``
``ERROR``      w -> s     ``(task_key, exception, traceback_text)``
``SETUP``      s -> w     ``(seq, key, callable_path, payload)`` — shared state
``SETUP_ACK``  w -> s     ``seq`` — the setup was applied (readiness signal)
``TASK``       s -> w     ``(task_key, callable_path, payload)``
``SHUTDOWN``   s -> w     ``None`` — drain and exit
=============  =========  ====================================================

:class:`FrameReader` is the incremental decoder: feed it whatever bytes
``os.read`` returned and it yields complete frames, buffering partial
ones — the supervisor's select loop never blocks on a half-received
frame.
"""

from __future__ import annotations

import enum
import pickle
import struct
from typing import Any, List, NamedTuple

from ..exceptions import ReproError

#: Seconds between worker heartbeat frames (part of the worker contract,
#: defined here so the supervisor side never has to import the worker
#: module — which would shadow ``python -m repro.fabric.worker``).
HEARTBEAT_ENV = "REPRO_FABRIC_HEARTBEAT_S"

#: First header byte of every frame; anything else is stream corruption.
MAGIC = 0xF5

#: magic:u8  kind:u8  payload_length:u32, little endian.
HEADER = struct.Struct("<BBI")

#: Refuse payloads above this size (512 MB): a corrupt length prefix must
#: not trigger a giant allocation.
MAX_PAYLOAD_BYTES = 512 << 20


class ProtocolError(ReproError, RuntimeError):
    """The byte stream does not parse as frames (corruption, bad magic)."""


class FrameKind(enum.IntEnum):
    """Message types of the worker protocol."""

    HELLO = 1
    HEARTBEAT = 2
    RESULT = 3
    ERROR = 4
    SETUP = 5
    SETUP_ACK = 6
    TASK = 7
    SHUTDOWN = 8


class Frame(NamedTuple):
    """One decoded frame: its kind and the unpickled payload object."""

    kind: FrameKind
    payload: Any


def encode_frame(kind: FrameKind, obj: Any) -> bytes:
    """Serialise one frame: header + pickled payload, ready to write."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte protocol limit"
        )
    return HEADER.pack(MAGIC, int(kind), len(payload)) + payload


def decode_payload(raw: bytes) -> Any:
    """Unpickle one frame payload."""
    return pickle.loads(raw)


class FrameReader:
    """Incremental frame decoder over an arbitrary byte-chunk stream.

    ``feed(data)`` returns every frame completed by ``data`` (possibly
    none) and keeps the unfinished tail buffered for the next call, so
    callers can hand it exactly what a non-blocking read produced.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Frame]:
        self._buffer.extend(data)
        frames: List[Frame] = []
        while True:
            if len(self._buffer) < HEADER.size:
                return frames
            magic, kind, length = HEADER.unpack_from(self._buffer)
            if magic != MAGIC:
                raise ProtocolError(
                    f"protocol stream corrupt: expected magic byte "
                    f"0x{MAGIC:02X}, got 0x{magic:02X}"
                )
            if length > MAX_PAYLOAD_BYTES:
                raise ProtocolError(
                    f"frame length {length} exceeds the "
                    f"{MAX_PAYLOAD_BYTES}-byte protocol limit"
                )
            if len(self._buffer) < HEADER.size + length:
                return frames
            raw = bytes(self._buffer[HEADER.size : HEADER.size + length])
            del self._buffer[: HEADER.size + length]
            try:
                payload = decode_payload(raw)
            except Exception as exc:
                raise ProtocolError(
                    f"frame payload of kind {kind} failed to unpickle: {exc}"
                ) from exc
            try:
                frame_kind = FrameKind(kind)
            except ValueError as exc:
                raise ProtocolError(f"unknown frame kind {kind}") from exc
            frames.append(Frame(frame_kind, payload))

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""
        return len(self._buffer)
