"""Supervised multi-process execution fabric.

The fabric is the robustness layer under every multi-process feature of
the library: a pool of **spawned worker processes** (fresh interpreters,
``python -m repro.fabric.worker``) driven over a **length-prefixed pipe
protocol** (:mod:`~repro.fabric.protocol`) by a supervisor state machine
(:mod:`~repro.fabric.supervisor`) that detects and recovers from every
worker failure mode the process model admits:

* **dead** — the worker exited or was SIGKILLed/OOM-killed; detected by
  EOF on its pipe or ``waitpid``, its unfinished tasks are re-dispatched.
* **hung** — the worker stopped heartbeating (SIGSTOP, a wedged C call)
  or a task overran its **deadline**; the supervisor SIGKILLs it and
  re-dispatches, so a stuck process can never stall a sweep forever.
* **poisoned** — the *same task* keeps killing fresh workers; after a
  bounded number of kills the task is declared poisoned and surfaced as
  :class:`~repro.fabric.supervisor.PoisonedTaskError` instead of burning
  through the pool.

Re-dispatch waits out an exponential backoff with decorrelated jitter
(:mod:`repro.resilience.retry`), and near the end of a task wave the
supervisor **hedges**: the slowest outstanding task is duplicated onto an
idle worker and the first result wins.  Because task functions are pure
and results are merged by task identity in submission order, recovery and
hedging are invisible in the output — a disturbed run is bitwise
identical to an undisturbed one, which the chaos suite asserts with real
SIGKILL/SIGSTOP/wedge faults.

Consumers: the ``procpool`` kernel backend
(:mod:`repro.kernels.backends.procpool`), the parallel row-update
executor (:mod:`repro.parallel.executor`) and multi-worker serving
(:mod:`repro.serve.workers`).
"""

from .protocol import Frame, FrameKind, FrameReader, decode_payload, encode_frame
from .supervisor import (
    FabricError,
    PoisonedTaskError,
    Task,
    TaskRetryError,
    TaskSupervisor,
    WorkerSetupError,
)

__all__ = [
    "FabricError",
    "Frame",
    "FrameKind",
    "FrameReader",
    "PoisonedTaskError",
    "Task",
    "TaskRetryError",
    "TaskSupervisor",
    "WorkerSetupError",
    "decode_payload",
    "encode_frame",
]
