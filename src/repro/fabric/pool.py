"""Worker process handles and the respawning pool under the supervisor.

:class:`WorkerHandle` wraps one spawned ``python -m repro.fabric.worker``
process: its pipes, an incremental :class:`~repro.fabric.protocol.FrameReader`
over its protocol channel, non-blocking buffered writes to its stdin, and
the liveness bookkeeping (last heartbeat, spawn grace, current task) the
supervisor's state machine reads.  Writes are buffered and flushed
opportunistically so the supervisor can never deadlock against a worker
that stopped reading — a SIGSTOPped worker simply accumulates outbound
bytes until the missed heartbeats get it killed.

:class:`WorkerPool` owns a fixed number of worker *slots*.  A slot whose
process died is respawned after a backoff delay with decorrelated jitter
(:class:`repro.resilience.retry.BackoffPolicy`), and every spawn replays
the pool's **setup log** — the ordered sequence of ``broadcast_setup``
calls — before the slot is offered work, so a replacement worker always
reaches the same state (model loaded, factors broadcast, updates applied)
as the peers it rejoins.  Pipe ordering guarantees a worker applies
setups before any task sent after them; ``SETUP_ACK`` frames additionally
report *how far* each worker has caught up, which is what readiness
checks (serving ``/health``) key on.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from ..metrics.timing import Counters
from ..resilience.retry import BackoffPolicy
from .protocol import HEARTBEAT_ENV, FrameKind, FrameReader, encode_frame

#: Default seconds between worker heartbeat frames.
DEFAULT_HEARTBEAT_INTERVAL = 0.25

#: A worker silent for this many intervals is declared hung.
HEARTBEAT_MISSES = 8

#: Grace period after a spawn before heartbeat silence counts: a fresh
#: interpreter pays python startup plus the numpy import before its first
#: beat.
DEFAULT_SPAWN_GRACE = 30.0


def worker_environment(heartbeat_interval: float) -> Dict[str, str]:
    """The spawned worker's environment: inherit, ensure importability.

    The parent may be running from a source tree via ``sys.path``
    manipulation (pytest, ``PYTHONPATH=src``); the child is a fresh
    interpreter, so the directory containing the ``repro`` package is
    prepended to its ``PYTHONPATH`` explicitly.
    """
    env = dict(os.environ)
    # __file__ is .../src/repro/fabric/pool.py; the import root is .../src.
    package_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    ))
    existing = env.get("PYTHONPATH", "")
    parts = [package_root] + ([existing] if existing else [])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    env[HEARTBEAT_ENV] = repr(float(heartbeat_interval))
    return env


class WorkerHandle:
    """One live worker process and its protocol state."""

    def __init__(self, worker_id: int, heartbeat_interval: float) -> None:
        self.worker_id = worker_id
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.fabric.worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,  # worker stderr (and stray prints) go to ours
            env=worker_environment(heartbeat_interval),
        )
        os.set_blocking(self.proc.stdout.fileno(), False)
        os.set_blocking(self.proc.stdin.fileno(), False)
        self.reader = FrameReader()
        self.outbuf = bytearray()
        self.spawned_at = time.monotonic()
        self.last_beat = self.spawned_at
        self.pid: Optional[int] = self.proc.pid
        self.hello_seen = False
        self.acked_seq = 0
        #: Key of the task currently dispatched to this worker, if any.
        self.current_task: Optional[Any] = None
        self.task_started_at: float = 0.0

    # ------------------------------------------------------------------
    def fileno(self) -> int:
        return self.proc.stdout.fileno()

    def stdin_fileno(self) -> int:
        return self.proc.stdin.fileno()

    @property
    def alive(self) -> bool:
        return self.proc.poll() is None

    def send(self, kind: FrameKind, payload: Any) -> bool:
        """Queue one frame for the worker; False if its pipe is gone."""
        try:
            self.outbuf.extend(encode_frame(kind, payload))
            return self.flush()
        except (BrokenPipeError, OSError, ValueError):
            return False

    def flush(self) -> bool:
        """Write as much buffered output as the pipe accepts right now."""
        while self.outbuf:
            try:
                written = os.write(self.stdin_fileno(), self.outbuf)
            except BlockingIOError:
                return True  # pipe full; the worker will drain it
            except (BrokenPipeError, OSError, ValueError):
                return False
            del self.outbuf[:written]
        return True

    def read_available(self) -> Optional[bytes]:
        """Bytes currently readable; ``b""`` on EOF, ``None`` when empty."""
        try:
            data = os.read(self.fileno(), 1 << 16)
        except BlockingIOError:
            return None
        except OSError:
            return b""
        return data

    def kill(self) -> None:
        """SIGKILL the process (works on stopped processes too) and reap it."""
        try:
            self.proc.kill()
        except OSError:
            pass
        self.close()

    def close(self) -> None:
        for stream in (self.proc.stdin, self.proc.stdout):
            try:
                stream.close()
            except OSError:
                pass
        try:
            self.proc.wait(timeout=10.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - defensive
            pass


class _Slot:
    """One worker position: live handle or a death awaiting respawn."""

    def __init__(self, worker_id: int, backoff: BackoffPolicy) -> None:
        self.worker_id = worker_id
        self.handle: Optional[WorkerHandle] = None
        self.backoff = backoff
        self.respawn_at = 0.0
        self.restarts = 0


class WorkerPool:
    """A fixed set of supervised worker slots with setup-log replay."""

    def __init__(
        self,
        n_workers: int,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        spawn_grace: float = DEFAULT_SPAWN_GRACE,
        backoff: Optional[BackoffPolicy] = None,
        counters: Optional[Counters] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = self.heartbeat_interval * HEARTBEAT_MISSES
        self.spawn_grace = float(spawn_grace)
        self.counters = counters if counters is not None else Counters()
        backoff = backoff if backoff is not None else BackoffPolicy()
        self.slots: List[_Slot] = [
            _Slot(
                i,
                BackoffPolicy(
                    base=backoff.base,
                    cap=backoff.cap,
                    multiplier=backoff.multiplier,
                    jitter=backoff.jitter,
                    seed=None if backoff.jitter == "none" else i,
                ),
            )
            for i in range(self.n_workers)
        ]
        self._setups: List[Tuple[int, str, str, Any]] = []
        self._seq = 0
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def latest_seq(self) -> int:
        """Sequence number of the newest setup broadcast."""
        return self._seq

    def live_handles(self) -> List[WorkerHandle]:
        return [slot.handle for slot in self.slots if slot.handle is not None]

    def spawn_missing(self, now: Optional[float] = None) -> List[WorkerHandle]:
        """Spawn every dead slot whose backoff delay has elapsed."""
        if self._closed:
            return []
        now = time.monotonic() if now is None else now
        spawned: List[WorkerHandle] = []
        for slot in self.slots:
            if slot.handle is not None or now < slot.respawn_at:
                continue
            handle = WorkerHandle(slot.worker_id, self.heartbeat_interval)
            for seq, key, fn_path, payload in self._setups:
                handle.send(FrameKind.SETUP, (seq, key, fn_path, payload))
            slot.handle = handle
            spawned.append(handle)
            self.counters.add("fabric.workers_spawned")
        return spawned

    def mark_dead(self, handle: WorkerHandle, killed: bool = False) -> None:
        """Retire a handle; its slot respawns after the backoff delay."""
        slot = self.slots[handle.worker_id]
        if slot.handle is not handle:  # pragma: no cover - defensive
            return
        handle.kill() if killed else handle.close()
        slot.handle = None
        slot.restarts += 1
        slot.respawn_at = time.monotonic() + slot.backoff.next_delay()
        self.counters.add("fabric.workers_killed" if killed
                          else "fabric.workers_died")

    def note_success(self, handle: WorkerHandle) -> None:
        """A healthy result arrived: reset the slot's backoff schedule."""
        self.slots[handle.worker_id].backoff.reset()

    def next_respawn_in(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds until the earliest pending respawn, if any."""
        now = time.monotonic() if now is None else now
        pending = [
            max(0.0, slot.respawn_at - now)
            for slot in self.slots
            if slot.handle is None
        ]
        return min(pending) if pending else None

    # ------------------------------------------------------------------
    def broadcast_setup(
        self,
        key: str,
        fn_path: str,
        payload: Any,
        replace_prefix: Optional[str] = None,
    ) -> int:
        """Append a setup to the replay log and send it to live workers.

        Returns the setup's sequence number; a worker whose
        ``acked_seq`` reaches it has applied this setup and everything
        before it.  Dead slots catch up automatically at respawn.

        ``replace_prefix`` compacts the replay log: earlier entries whose
        key starts with the prefix are dropped before this one is
        appended.  Per-sweep broadcasts (kernel state that a new sweep
        fully supersedes) use this so the log — and therefore respawn
        cost and supervisor memory — stays bounded over arbitrarily long
        fits, while ordered histories (model updates) leave it unset.
        """
        self._seq += 1
        record = (self._seq, key, fn_path, payload)
        if replace_prefix is not None:
            self._setups = [
                entry for entry in self._setups
                if not entry[1].startswith(replace_prefix)
            ]
        self._setups.append(record)
        for handle in self.live_handles():
            handle.send(FrameKind.SETUP, record)
        return self._seq

    def all_acked(self) -> bool:
        """Every slot is live and has applied the full setup log."""
        return all(
            slot.handle is not None and slot.handle.acked_seq >= self._seq
            for slot in self.slots
        )

    def liveness(self) -> List[Dict[str, Any]]:
        """JSON-ready per-slot liveness (``/health`` payload material)."""
        now = time.monotonic()
        report = []
        for slot in self.slots:
            handle = slot.handle
            report.append(
                {
                    "worker": slot.worker_id,
                    "alive": handle is not None and handle.alive,
                    "pid": handle.pid if handle is not None else None,
                    "restarts": slot.restarts,
                    "last_heartbeat_age_s": (
                        round(now - handle.last_beat, 3)
                        if handle is not None
                        else None
                    ),
                    "setup_caught_up": (
                        handle is not None and handle.acked_seq >= self._seq
                    ),
                }
            )
        return report

    def shutdown(self) -> None:
        """Politely stop every worker, then make sure they are gone."""
        self._closed = True
        for handle in self.live_handles():
            handle.send(FrameKind.SHUTDOWN, None)
        deadline = time.monotonic() + 2.0
        for slot in self.slots:
            handle = slot.handle
            if handle is None:
                continue
            while handle.alive and time.monotonic() < deadline:
                time.sleep(0.01)
            handle.kill()
            slot.handle = None
