"""Worker process entry point: ``python -m repro.fabric.worker``.

A worker is a freshly spawned interpreter that speaks the length-prefixed
frame protocol of :mod:`repro.fabric.protocol` on its standard pipes:
frames in on stdin, frames out on a private duplicate of stdout.  On
startup the real ``stdout`` descriptor is re-pointed at ``stderr`` so a
stray ``print()`` anywhere in library code lands in the supervisor's log,
never in the middle of a frame.

The main loop is single-threaded and strictly ordered — ``SETUP`` frames
are applied before any later ``TASK`` frame is read, which is what lets
the supervisor send setup and tasks back to back without an explicit
barrier.  A background **heartbeat thread** emits a ``HEARTBEAT`` frame
every ``REPRO_FABRIC_HEARTBEAT_S`` seconds carrying the key of the task
currently executing (or ``None``), including *while a task computes*; a
worker that stops heartbeating is therefore either dead or truly stuck
(SIGSTOP, a wedged syscall), never merely busy.

Task and setup functions are referenced by **dotted path**
(``"package.module:function"``) so payloads never carry closures; each is
called as ``fn(context, payload)`` where the :class:`WorkerContext`
exposes earlier setup results (``context.setups``) and a scratch cache
(``context.cache``) for derived state such as compiled kernels.

Fault injection (chaos tests only): when ``REPRO_FABRIC_INJECT_KILL``,
``_STOP`` or ``_WEDGE`` name a sentinel path, the first task execution to
claim the sentinel (exclusive create, so exactly one firing per path)
respectively SIGKILLs itself, SIGSTOPs itself, or wedges in a sleep loop
with heartbeats still flowing — the three failure modes the supervisor
distinguishes.  ``REPRO_FABRIC_INJECT_AT`` delays the firing to the n-th
task executed by the claiming worker, so seeded tests can move the fault
around the sweep.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import time
import traceback
from importlib import import_module
from typing import Any, BinaryIO, Callable, Dict, Optional

from .protocol import HEARTBEAT_ENV, FrameKind, FrameReader, encode_frame

__all__ = ["HEARTBEAT_ENV", "WorkerContext", "main", "resolve_callable"]

#: Chaos sentinels: first task to claim one fires the matching fault.
INJECT_KILL_ENV = "REPRO_FABRIC_INJECT_KILL"
INJECT_STOP_ENV = "REPRO_FABRIC_INJECT_STOP"
INJECT_WEDGE_ENV = "REPRO_FABRIC_INJECT_WEDGE"

#: Task ordinal (1-based, per worker) at which a claimed fault fires.
INJECT_AT_ENV = "REPRO_FABRIC_INJECT_AT"


class WorkerContext:
    """Per-worker state visible to task functions.

    ``setups`` maps setup keys to the return values of their setup
    callables (broadcast state: factor matrices, loaded models);
    ``cache`` is a scratch dict for state derived from setups (compiled
    kernels, projection slices) that tasks want to reuse across calls.
    """

    def __init__(self) -> None:
        self.setups: Dict[str, Any] = {}
        self.cache: Dict[Any, Any] = {}
        self.tasks_executed = 0


def resolve_callable(path: str) -> Callable[..., Any]:
    """Import ``"package.module:attr"`` (or dotted-only) to a callable."""
    module_name, sep, attr = path.partition(":")
    if not sep:
        module_name, _, attr = path.rpartition(".")
    if not module_name or not attr:
        raise ValueError(f"not a callable path: {path!r}")
    fn = getattr(import_module(module_name), attr)
    if not callable(fn):
        raise TypeError(f"{path!r} resolved to non-callable {fn!r}")
    return fn


def _claim_sentinel(path: str) -> bool:
    """Atomically claim a chaos sentinel; only one claimant ever wins."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except (FileExistsError, FileNotFoundError):
        return False
    os.close(fd)
    return True


def _maybe_inject_fault(context: WorkerContext) -> None:
    """Fire at most one configured chaos fault at the configured ordinal."""
    fire_at = int(os.environ.get(INJECT_AT_ENV, "1") or "1")
    if context.tasks_executed != fire_at:
        return
    kill = os.environ.get(INJECT_KILL_ENV, "")
    if kill and _claim_sentinel(kill):
        os.kill(os.getpid(), signal.SIGKILL)
    stop = os.environ.get(INJECT_STOP_ENV, "")
    if stop and _claim_sentinel(stop):
        # A stopped process heartbeats nothing; the supervisor must notice
        # the silence and SIGKILL us (which works on stopped processes).
        os.kill(os.getpid(), signal.SIGSTOP)
    wedge = os.environ.get(INJECT_WEDGE_ENV, "")
    if wedge and _claim_sentinel(wedge):
        # Heartbeats keep flowing: only the task deadline can catch this.
        while True:  # pragma: no cover - killed by the supervisor
            time.sleep(0.05)


class _Heartbeat(threading.Thread):
    """Background thread emitting periodic HEARTBEAT frames."""

    def __init__(
        self, out: BinaryIO, lock: threading.Lock, interval: float,
        state: Dict[str, Any],
    ) -> None:
        super().__init__(name="fabric-heartbeat", daemon=True)
        self.out = out
        self.lock = lock
        self.interval = interval
        self.state = state
        self.stop_event = threading.Event()

    def run(self) -> None:
        while not self.stop_event.wait(self.interval):
            try:
                _send(self.out, self.lock, FrameKind.HEARTBEAT,
                      self.state.get("task"))
            except (BrokenPipeError, OSError, ValueError):
                return  # supervisor is gone; the main loop will exit too


def _send(out: BinaryIO, lock: threading.Lock, kind: FrameKind,
          payload: Any) -> None:
    data = encode_frame(kind, payload)
    with lock:
        out.write(data)
        out.flush()


def _run_task(
    out: BinaryIO,
    lock: threading.Lock,
    context: WorkerContext,
    key: Any,
    fn_path: str,
    payload: Any,
) -> None:
    try:
        context.tasks_executed += 1
        _maybe_inject_fault(context)
        result = resolve_callable(fn_path)(context, payload)
    except BaseException as exc:  # noqa: BLE001 - shipped to the supervisor
        _send_error(out, lock, key, exc)
        return
    _send(out, lock, FrameKind.RESULT, (key, result))


def _send_error(out: BinaryIO, lock: threading.Lock, key: Any,
                exc: BaseException) -> None:
    text = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
    try:
        _send(out, lock, FrameKind.ERROR, (key, exc, text))
    except Exception:
        # The exception itself did not pickle; ship its description.
        _send(out, lock, FrameKind.ERROR,
              (key, RuntimeError(f"{type(exc).__name__}: {exc}"), text))


def main() -> int:
    """Worker main loop; returns the process exit code."""
    # Claim the protocol channel, then point stdout at stderr so stray
    # prints from task code can never corrupt the frame stream.
    out = os.fdopen(os.dup(sys.stdout.fileno()), "wb")
    os.dup2(sys.stderr.fileno(), sys.stdout.fileno())
    in_fd = sys.stdin.fileno()

    lock = threading.Lock()
    state: Dict[str, Any] = {"task": None}
    interval = float(os.environ.get(HEARTBEAT_ENV, "0.5") or "0.5")
    heartbeat = _Heartbeat(out, lock, interval, state)
    heartbeat.start()
    context = WorkerContext()
    try:
        _send(out, lock, FrameKind.HELLO, {"pid": os.getpid()})
    except (BrokenPipeError, OSError):
        return 1

    reader = FrameReader()
    while True:
        try:
            data = os.read(in_fd, 1 << 16)
        except OSError:
            return 1
        if not data:
            return 0  # supervisor closed our stdin: clean shutdown
        for frame in reader.feed(data):
            try:
                if frame.kind is FrameKind.SHUTDOWN:
                    heartbeat.stop_event.set()
                    return 0
                if frame.kind is FrameKind.SETUP:
                    seq, key, fn_path, payload = frame.payload
                    try:
                        context.setups[key] = resolve_callable(fn_path)(
                            context, payload
                        )
                    except BaseException as exc:  # noqa: BLE001
                        _send_error(out, lock, ("__setup__", seq, key), exc)
                        continue
                    _send(out, lock, FrameKind.SETUP_ACK, seq)
                elif frame.kind is FrameKind.TASK:
                    key, fn_path, payload = frame.payload
                    state["task"] = key
                    try:
                        _run_task(out, lock, context, key, fn_path, payload)
                    finally:
                        state["task"] = None
            except (BrokenPipeError, OSError):
                return 1


if __name__ == "__main__":
    sys.exit(main())
