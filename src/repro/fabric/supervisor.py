"""The supervisor state machine: dispatch, detect, recover, hedge.

:class:`TaskSupervisor` drives a :class:`~repro.fabric.pool.WorkerPool`
through waves of tasks (:meth:`run_tasks`) while distinguishing the three
ways a worker can fail:

* **dead** — EOF on the worker's pipe or ``waitpid`` says it exited
  (SIGKILL, OOM-kill, crash).  Its unfinished task re-enters the queue
  after a decorrelated-jitter backoff delay and the slot respawns.
* **hung** — the worker missed :data:`~repro.fabric.pool.HEARTBEAT_MISSES`
  consecutive heartbeats (SIGSTOP, a wedged C extension: the heartbeat
  thread beats *through* long computations, so silence means stuck, not
  busy), or its task overran the per-task **deadline** while heartbeats
  still flowed (a wedged task in a healthy process).  Either way the
  supervisor SIGKILLs the process — the only safe recovery, since a
  stopped process may hold the task forever — and re-dispatches.
* **poisoned** — the same task killed ``poison_threshold`` workers.
  Re-dispatching would keep burning fresh workers, so the wave stops with
  :class:`PoisonedTaskError` naming the task.

Near the end of a wave, idle workers **hedge**: the slowest outstanding
task (oldest dispatch) is duplicated onto an idle worker and the first
result wins.  Results are recorded by task identity and returned in
submission order, and task functions are pure, so hedging — like every
recovery above — cannot change a single bit of the output; the chaos
suite asserts exactly that against undisturbed runs.

Exceptions *raised by* a task (an ``ERROR`` frame, as opposed to a death)
are deterministic bugs: they propagate immediately with the remote
traceback attached, never retried.
"""

from __future__ import annotations

import logging
import select
import time
from typing import Any, Dict, List, NamedTuple, Optional, Set

from ..exceptions import ReproError
from ..metrics.timing import Counters
from ..resilience.retry import BackoffPolicy, Deadline
from .pool import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_SPAWN_GRACE,
    WorkerHandle,
    WorkerPool,
)
from .protocol import FrameKind, ProtocolError

logger = logging.getLogger(__name__)

#: Default extra re-dispatches a task gets after its first failed attempt.
DEFAULT_MAX_TASK_RETRIES = 3

#: Default worker kills by one task before it is declared poisoned.
DEFAULT_POISON_THRESHOLD = 3

#: Default seconds a task must have been running before it is hedged.
DEFAULT_HEDGE_AFTER = 0.2

#: Upper bound on one select() wait so time-based checks stay responsive.
_MAX_WAIT = 0.05


class FabricError(ReproError, RuntimeError):
    """Base class for supervisor-level failures."""


class TaskRetryError(FabricError):
    """A task exhausted its re-dispatch budget across worker failures."""

    def __init__(self, message: str, keys: List[Any]) -> None:
        super().__init__(message)
        self.keys = keys


class PoisonedTaskError(FabricError):
    """One task keeps killing fresh workers; re-dispatch was stopped."""

    def __init__(self, message: str, key: Any, kills: int) -> None:
        super().__init__(message)
        self.key = key
        self.kills = kills


class WorkerSetupError(FabricError):
    """A setup broadcast failed inside a worker (or never got applied)."""


class Task(NamedTuple):
    """One unit of work: an identity, a callable path, and its payload."""

    key: Any
    fn: str
    payload: Any


class _TaskState:
    __slots__ = (
        "task", "done", "result", "attempts", "kills", "running",
        "first_dispatch", "ready_at", "hedged",
    )

    def __init__(self, task: Task) -> None:
        self.task = task
        self.done = False
        self.result: Any = None
        self.attempts = 0  # failed dispatches consumed so far
        self.kills = 0  # workers this task's copies have taken down
        self.running: Dict[int, float] = {}  # worker_id -> dispatched at
        self.first_dispatch = 0.0
        self.ready_at = 0.0  # backoff gate before the next re-dispatch
        self.hedged = False


class TaskSupervisor:
    """Supervised execution of task waves over a respawning worker pool."""

    def __init__(
        self,
        n_workers: int,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        spawn_grace: float = DEFAULT_SPAWN_GRACE,
        task_deadline: Optional[float] = None,
        max_task_retries: int = DEFAULT_MAX_TASK_RETRIES,
        poison_threshold: int = DEFAULT_POISON_THRESHOLD,
        hedge: bool = True,
        hedge_after: float = DEFAULT_HEDGE_AFTER,
        backoff: Optional[BackoffPolicy] = None,
        counters: Optional[Counters] = None,
        name: str = "fabric",
    ) -> None:
        self.counters = counters if counters is not None else Counters()
        self.pool = WorkerPool(
            n_workers,
            heartbeat_interval=heartbeat_interval,
            spawn_grace=spawn_grace,
            backoff=backoff,
            counters=self.counters,
        )
        self.task_deadline = task_deadline
        self.max_task_retries = int(max_task_retries)
        self.poison_threshold = int(poison_threshold)
        self.hedge = bool(hedge)
        self.hedge_after = float(hedge_after)
        self.name = name
        self._redispatch_backoff = (
            backoff
            if backoff is not None
            else BackoffPolicy(base=0.02, cap=1.0)
        )
        self._run_id = 0
        self._states: Dict[Any, _TaskState] = {}
        self._queue: List[Any] = []
        self._deaths_since_progress = 0
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the initial workers (idempotent)."""
        if self._closed:
            raise FabricError(f"{self.name}: supervisor already shut down")
        self._started = True
        self.pool.spawn_missing()

    def shutdown(self) -> None:
        if not self._closed:
            self._closed = True
            self.pool.shutdown()

    def __enter__(self) -> "TaskSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Setup broadcasts and readiness
    # ------------------------------------------------------------------
    def broadcast_setup(
        self,
        key: str,
        fn: str,
        payload: Any,
        wait: bool = False,
        timeout: float = 60.0,
        replace_prefix: Optional[str] = None,
    ) -> int:
        """Replay-logged shared state for every present and future worker.

        With ``wait=True`` the call drives the event loop until every
        slot acknowledged the full setup log (raising
        :class:`WorkerSetupError` on timeout); otherwise readiness can be
        polled later via :meth:`ready`.
        """
        self.start()
        seq = self.pool.broadcast_setup(
            key, fn, payload, replace_prefix=replace_prefix
        )
        if wait and not self.wait_ready(timeout):
            raise WorkerSetupError(
                f"{self.name}: workers did not acknowledge setup "
                f"{key!r} within {timeout}s"
            )
        return seq

    def ready(self) -> bool:
        """True when every slot is live and has applied the setup log."""
        self.poll()
        return self.pool.all_acked()

    def wait_ready(self, timeout: float) -> bool:
        deadline = Deadline.after(timeout)
        while True:
            self.poll(deadline.clamp(_MAX_WAIT))
            if self.pool.all_acked():
                return True
            if deadline.expired:
                return False

    def poll(self, wait: float = 0.0) -> None:
        """One supervision step with no wave running: respawn, drain, check."""
        self.start()
        self._step(wait)

    def liveness(self) -> List[Dict[str, Any]]:
        """Per-worker liveness snapshot (drains frames first)."""
        self.poll()
        return self.pool.liveness()

    # ------------------------------------------------------------------
    # Task waves
    # ------------------------------------------------------------------
    def run_tasks(
        self,
        tasks: List[Task],
        deadline: Optional[float] = None,
        hedge: Optional[bool] = None,
    ) -> List[Any]:
        """Execute one wave of tasks and return results in task order.

        ``deadline`` (seconds, per task execution) overrides the
        supervisor default; ``hedge`` likewise.  Worker deaths and hangs
        are recovered transparently; deterministic task exceptions
        propagate; :class:`TaskRetryError` / :class:`PoisonedTaskError`
        report unrecoverable waves.
        """
        if not tasks:
            return []
        self.start()
        self._run_id += 1
        run = self._run_id
        hedge = self.hedge if hedge is None else bool(hedge)
        task_deadline = self.task_deadline if deadline is None else deadline

        states: Dict[Any, _TaskState] = {}
        order: List[Any] = []
        for task in tasks:
            key = (run, task.key)
            if key in states:
                raise ValueError(f"duplicate task key {task.key!r}")
            states[key] = _TaskState(task)
            order.append(key)
        self._states = states
        self._queue = list(order)
        pending = len(order)

        try:
            while pending:
                now = time.monotonic()
                self._dispatch(self._queue, states, now, hedge)
                self._step(
                    self._wait_for(self._queue, states, now), task_deadline
                )
                pending = sum(1 for key in order if not states[key].done)
            return [states[key].result for key in order]
        finally:
            self._states = {}
            self._queue = []

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _wait_for(
        self, queue: List[Any], states: Dict[Any, _TaskState], now: float
    ) -> float:
        wait = _MAX_WAIT
        respawn = self.pool.next_respawn_in(now)
        if respawn is not None:
            wait = min(wait, respawn)
        for key in queue:
            wait = min(wait, max(0.0, states[key].ready_at - now))
        return max(0.0, wait)

    def _dispatch(
        self,
        queue: List[Any],
        states: Dict[Any, _TaskState],
        now: float,
        hedge: bool,
    ) -> None:
        idle = [
            handle
            for handle in self.pool.live_handles()
            if handle.current_task is None
        ]
        for handle in idle:
            key = self._next_queued(queue, states, now)
            duplicate = False
            if key is None:
                if not hedge or queue:
                    continue
                key = self._hedge_candidate(states, now)
                if key is None:
                    continue
                duplicate = True
            state = states[key]
            if not handle.send(
                FrameKind.TASK, (key, state.task.fn, state.task.payload)
            ):
                if not duplicate:
                    queue.append(key)
                self._on_worker_gone(handle, killed=False, reason="pipe gone")
                continue
            handle.current_task = key
            handle.task_started_at = now
            state.running[handle.worker_id] = now
            if not state.first_dispatch:
                state.first_dispatch = now
            if duplicate:
                state.hedged = True
                self.counters.add("fabric.hedges")
                logger.debug(
                    "%s: hedging slowest task %r onto idle worker %d",
                    self.name, key, handle.worker_id,
                )
            self.counters.add("fabric.tasks_dispatched")

    def _next_queued(
        self, queue: List[Any], states: Dict[Any, _TaskState], now: float
    ) -> Optional[Any]:
        for position, key in enumerate(queue):
            if states[key].ready_at <= now:
                return queue.pop(position)
        return None

    def _hedge_candidate(
        self, states: Dict[Any, _TaskState], now: float
    ) -> Optional[Any]:
        best: Optional[Any] = None
        best_started = now
        for key, state in states.items():
            if state.done or state.hedged or len(state.running) != 1:
                continue
            started = next(iter(state.running.values()))
            if now - started < self.hedge_after:
                continue
            if started < best_started:
                best, best_started = key, started
        return best

    def _step(self, wait: float, task_deadline: Optional[float] = None) -> None:
        """One event-loop iteration: respawn, flush, read, time checks."""
        now = time.monotonic()
        self.pool.spawn_missing(now)
        for handle in list(self.pool.live_handles()):
            if not handle.flush():
                self._on_worker_gone(handle, killed=False, reason="pipe gone")
        live = self.pool.live_handles()
        by_fd = {}
        for handle in live:
            try:
                by_fd[handle.fileno()] = handle
            except (OSError, ValueError):  # pragma: no cover - defensive
                self._on_worker_gone(handle, killed=False, reason="pipe gone")
        if by_fd:
            try:
                readable, _, _ = select.select(list(by_fd), [], [], wait)
            except OSError:  # a pipe vanished mid-select; next pass reaps it
                readable = []
        else:
            if wait > 0:
                time.sleep(wait)
            readable = []
        for fd in readable:
            self._drain(by_fd[fd])
        self._time_checks(task_deadline)

    def _drain(self, handle: WorkerHandle) -> None:
        while True:
            data = handle.read_available()
            if data is None:
                return
            if data == b"":
                self._on_worker_gone(handle, killed=False, reason="EOF")
                return
            try:
                frames = handle.reader.feed(data)
            except ProtocolError as exc:
                logger.warning(
                    "%s: worker %d corrupted the protocol stream (%s); "
                    "killing it", self.name, handle.worker_id, exc,
                )
                self._on_worker_gone(
                    handle, killed=True, reason="protocol corruption"
                )
                return
            for frame in frames:
                self._on_frame(handle, frame.kind, frame.payload)

    def _on_frame(
        self, handle: WorkerHandle, kind: FrameKind, payload: Any
    ) -> None:
        handle.last_beat = time.monotonic()
        if kind is FrameKind.HELLO:
            handle.hello_seen = True
            handle.pid = int(payload["pid"])
        elif kind is FrameKind.HEARTBEAT:
            pass  # the timestamp update above is the whole point
        elif kind is FrameKind.SETUP_ACK:
            handle.acked_seq = max(handle.acked_seq, int(payload))
        elif kind is FrameKind.RESULT:
            key, result = payload
            if handle.current_task == key:
                handle.current_task = None
            state = self._states.get(key)
            if state is None:
                self.counters.add("fabric.stale_results")
                return
            state.running.pop(handle.worker_id, None)
            if state.done:
                self.counters.add("fabric.duplicates_ignored")
                return
            state.done = True
            state.result = result
            self.pool.note_success(handle)
            self._deaths_since_progress = 0
            self.counters.add("fabric.tasks_completed")
        elif kind is FrameKind.ERROR:
            key, exc, remote_tb = payload
            if key and isinstance(key, tuple) and key[0] == "__setup__":
                raise WorkerSetupError(
                    f"{self.name}: setup {key[2]!r} failed in worker "
                    f"{handle.worker_id}: {exc}\n{remote_tb}"
                ) from exc
            if handle.current_task == key:
                handle.current_task = None
            state = self._states.get(key)
            if state is None or state.done:
                self.counters.add("fabric.stale_results")
                return
            state.running.pop(handle.worker_id, None)
            # Deterministic failure: re-running a bug only repeats it.
            try:
                exc.add_note(f"remote worker traceback:\n{remote_tb}")
            except (AttributeError, TypeError):  # pragma: no cover
                pass
            raise exc

    def _time_checks(self, task_deadline: Optional[float]) -> None:
        now = time.monotonic()
        for handle in list(self.pool.live_handles()):
            silence = now - handle.last_beat
            budget = self.pool.heartbeat_timeout + (
                self.pool.spawn_grace if not handle.hello_seen else 0.0
            )
            if silence > budget:
                logger.warning(
                    "%s: worker %d (pid %s) missed heartbeats for %.2fs; "
                    "SIGKILL + re-dispatch",
                    self.name, handle.worker_id, handle.pid, silence,
                )
                self.counters.add("fabric.workers_hung")
                self._on_worker_gone(handle, killed=True, reason="hung")
                continue
            if (
                handle.current_task is not None
                and task_deadline is not None
                and now - handle.task_started_at > task_deadline
            ):
                logger.warning(
                    "%s: worker %d overran the %.2fs task deadline on %r; "
                    "SIGKILL + re-dispatch",
                    self.name, handle.worker_id, task_deadline,
                    handle.current_task,
                )
                self.counters.add("fabric.deadline_kills")
                self._on_worker_gone(handle, killed=True, reason="deadline")

    def _on_worker_gone(
        self, handle: WorkerHandle, killed: bool, reason: str
    ) -> None:
        key = handle.current_task
        handle.current_task = None
        self.pool.mark_dead(handle, killed=killed)
        self._deaths_since_progress += 1
        limit = self.pool.n_workers * (self.max_task_retries + 3) + 4
        if self._deaths_since_progress > limit:
            raise FabricError(
                f"{self.name}: {self._deaths_since_progress} consecutive "
                f"worker failures without a single completed task "
                f"(last: {reason}); the worker environment is broken"
            )
        if key is None:
            return
        state = self._states.get(key)
        if state is None:
            return  # a stale task from a finished wave died with the worker
        state.running.pop(handle.worker_id, None)
        if state.done:
            return
        state.kills += 1
        if state.kills >= self.poison_threshold:
            raise PoisonedTaskError(
                f"{self.name}: task {key!r} killed {state.kills} workers "
                f"(poison threshold {self.poison_threshold}); not "
                f"re-dispatching a poisoned task",
                key=key,
                kills=state.kills,
            )
        if state.running:
            return  # a hedged twin is still computing this task
        state.attempts += 1
        if state.attempts > self.max_task_retries:
            raise TaskRetryError(
                f"{self.name}: task {key!r} failed {state.attempts} times "
                f"(worker {reason}; max_task_retries="
                f"{self.max_task_retries})",
                keys=[key],
            )
        state.ready_at = time.monotonic() + self._redispatch_backoff.next_delay()
        self.counters.add("fabric.redispatches")
        self._queue.append(key)
        logger.warning(
            "%s: re-dispatching task %r after worker %s "
            "(attempt %d of %d)",
            self.name, key, reason, state.attempts + 1,
            self.max_task_retries + 1,
        )
