"""Synthetic dataset generators and experiment workloads."""

from .movielens import MovieLensLike, generate_movielens_like, movie_titles
from .synthetic import (
    PlantedTensor,
    block_structured_tensor,
    planted_tucker_tensor,
    random_sparse_tensor,
)
from .workloads import (
    Sweep,
    Workload,
    dimensionality_sweep,
    nnz_sweep,
    order_sweep,
    rank_sweep,
    realworld_standins,
)

__all__ = [
    "MovieLensLike",
    "generate_movielens_like",
    "movie_titles",
    "PlantedTensor",
    "planted_tucker_tensor",
    "random_sparse_tensor",
    "block_structured_tensor",
    "Workload",
    "Sweep",
    "order_sweep",
    "dimensionality_sweep",
    "nnz_sweep",
    "rank_sweep",
    "realworld_standins",
]
