"""Workload descriptions for the scalability experiments.

Figure 6 of the paper sweeps one tensor attribute at a time (order,
dimensionality, number of observed entries, rank) while holding the others
fixed.  Each sweep point is captured here as a :class:`Workload` so the
experiment harness and the benchmarks share one definition of "what to run".

The paper's sweeps reach sizes (I = 10^7, |Ω| = 10^7, 252 M-entry real
tensors) that are impractical for a pure-Python single run; every sweep has a
``scale`` knob that shrinks the grid proportionally while keeping the swept
attribute's *relative* progression, so the shape of each curve is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..tensor.coo import SparseTensor
from .movielens import generate_movielens_like
from .synthetic import planted_tucker_tensor, random_sparse_tensor


@dataclass(frozen=True)
class Workload:
    """One point of a scalability sweep.

    Attributes
    ----------
    name:
        Display name, e.g. ``"order=4"``.
    shape:
        Tensor shape to generate.
    nnz:
        Number of observed entries.
    ranks:
        Tucker ranks to factorize with.
    seed:
        Seed for the generator so runs are repeatable.
    planted:
        When True, draw values from a planted Tucker model (used by accuracy
        experiments); otherwise values are uniform random (speed experiments).
    """

    name: str
    shape: Tuple[int, ...]
    nnz: int
    ranks: Tuple[int, ...]
    seed: int = 0
    planted: bool = False

    def build(self) -> SparseTensor:
        """Materialise the sparse tensor for this workload."""
        if self.planted:
            return planted_tucker_tensor(
                self.shape, self.ranks, self.nnz, noise_level=0.01, seed=self.seed
            ).tensor
        return random_sparse_tensor(self.shape, self.nnz, seed=self.seed)


@dataclass(frozen=True)
class Sweep:
    """A named list of workloads swept over one attribute."""

    attribute: str
    workloads: Tuple[Workload, ...] = field(default_factory=tuple)

    def names(self) -> List[str]:
        return [w.name for w in self.workloads]


def order_sweep(
    orders: Sequence[int] = (3, 4, 5, 6, 7, 8),
    dimensionality: int = 60,
    nnz: int = 1000,
    rank: int = 3,
    seed: int = 7,
) -> Sweep:
    """Figure 6(a): vary the tensor order N (paper: 3..10, I=100, |Ω|=1e3, J=3)."""
    workloads = tuple(
        Workload(
            name=f"order={n}",
            shape=tuple([dimensionality] * n),
            nnz=nnz,
            ranks=tuple([rank] * n),
            seed=seed + n,
        )
        for n in orders
    )
    return Sweep(attribute="order", workloads=workloads)


def dimensionality_sweep(
    dims: Sequence[int] = (100, 1000, 10_000, 50_000),
    order: int = 3,
    nnz_per_dim: int = 10,
    rank: int = 8,
    seed: int = 11,
) -> Sweep:
    """Figure 6(b): vary mode length I (paper: 1e2..1e7, |Ω|=10·I, J=10)."""
    workloads = tuple(
        Workload(
            name=f"I={dim}",
            shape=tuple([dim] * order),
            nnz=nnz_per_dim * dim,
            ranks=tuple([rank] * order),
            seed=seed + i,
        )
        for i, dim in enumerate(dims)
    )
    return Sweep(attribute="dimensionality", workloads=workloads)


def nnz_sweep(
    nnzs: Sequence[int] = (1000, 10_000, 100_000, 300_000),
    order: int = 3,
    dimensionality: int = 50_000,
    rank: int = 8,
    seed: int = 13,
) -> Sweep:
    """Figure 6(c): vary |Ω| (paper: 1e3..1e7, I=1e7, J=10)."""
    workloads = tuple(
        Workload(
            name=f"nnz={nnz}",
            shape=tuple([dimensionality] * order),
            nnz=nnz,
            ranks=tuple([rank] * order),
            seed=seed + i,
        )
        for i, nnz in enumerate(nnzs)
    )
    return Sweep(attribute="nnz", workloads=workloads)


def rank_sweep(
    ranks: Sequence[int] = (3, 5, 7, 9, 11),
    order: int = 3,
    dimensionality: int = 10_000,
    nnz: int = 50_000,
    seed: int = 17,
) -> Sweep:
    """Figure 6(d): vary the Tucker rank J (paper: 3..11, I=1e6, |Ω|=1e7)."""
    workloads = tuple(
        Workload(
            name=f"J={rank}",
            shape=tuple([dimensionality] * order),
            nnz=nnz,
            ranks=tuple([rank] * order),
            seed=seed + i,
        )
        for i, rank in enumerate(ranks)
    )
    return Sweep(attribute="rank", workloads=workloads)


def realworld_standins(
    scale: float = 1.0, seed: int = 23
) -> Dict[str, Tuple[SparseTensor, Tuple[int, ...]]]:
    """Scaled-down stand-ins for the four real-world tensors of Table IV.

    Returns a mapping from dataset name to ``(tensor, ranks)``.  Shapes keep
    the same modal semantics as Table IV (two large modes + small context
    modes for the rating tensors, small dense-ish shapes for video/image) at
    a fraction of the size, per the substitution policy in DESIGN.md.
    """

    def scaled(value: int, minimum: int = 4) -> int:
        return max(minimum, int(round(value * scale)))

    def capped_nnz(requested: int, shape: Tuple[int, ...]) -> int:
        """Keep the observed-entry count below half the tensor's cell count."""
        cells = 1
        for dim in shape:
            cells *= dim
        return max(1, min(requested, cells // 2))

    movielens = generate_movielens_like(
        n_users=scaled(600),
        n_movies=scaled(200),
        n_years=12,
        n_hours=24,
        n_ratings=scaled(30_000, minimum=2000),
        seed=seed,
    ).tensor
    yahoo = generate_movielens_like(
        n_users=scaled(1200),
        n_movies=scaled(400),
        n_years=10,
        n_hours=24,
        n_ratings=scaled(60_000, minimum=4000),
        seed=seed + 1,
    ).tensor
    video_shape = (scaled(60), scaled(80), 3, scaled(16))
    video = planted_tucker_tensor(
        shape=video_shape,
        ranks=(3, 3, 3, 3),
        nnz=capped_nnz(scaled(8000, minimum=1000), video_shape),
        noise_level=0.02,
        seed=seed + 2,
    ).tensor
    image_shape = (scaled(128), scaled(128), 3)
    image = planted_tucker_tensor(
        shape=image_shape,
        ranks=(3, 3, 3),
        nnz=capped_nnz(scaled(4000, minimum=800), image_shape),
        noise_level=0.02,
        seed=seed + 3,
    ).tensor
    return {
        "MovieLens": (movielens, (10, 10, 5, 5)),
        "Yahoo-music": (yahoo, (10, 10, 5, 5)),
        "Video": (video, (3, 3, 3, 3)),
        "Image": (image, (3, 3, 3)),
    }
