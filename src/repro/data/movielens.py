"""MovieLens-style synthetic rating tensor with planted structure.

The paper's discovery study (Section V, Tables V and VI) and several speed /
accuracy experiments run on the real MovieLens tensor
(user, movie, year, hour; rating).  The real dataset is not available in this
offline environment, so this module generates a *stand-in* with the same
shape semantics and with planted latent structure:

* every movie belongs to one of a small set of genres,
* every user has a preference vector over genres,
* rating propensity depends on (genre, year) and (genre, hour) affinities,
  which plants the year/hour relations the paper discovers in the core
  tensor.

Because the structure is planted, the discovery experiments can verify that
P-Tucker recovers genre-like movie clusters and strong (year, hour) relations,
which is the qualitative claim of Tables V and VI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..tensor.coo import SparseTensor

DEFAULT_GENRES = ("Thriller", "Comedy", "Drama", "Action", "Romance", "SciFi")


@dataclass(frozen=True)
class MovieLensLike:
    """A synthetic rating tensor together with its planted ground truth.

    Attributes
    ----------
    tensor:
        Sparse (user, movie, year, hour) rating tensor with values in [0, 1].
    movie_genre:
        Planted genre id of every movie.
    user_preference:
        (n_users, n_genres) matrix of user-genre affinities.
    genre_year_affinity / genre_hour_affinity:
        Planted context affinities that produce relations between modes.
    genre_names:
        Human-readable genre labels (used by the discovery reports).
    """

    tensor: SparseTensor
    movie_genre: np.ndarray
    user_preference: np.ndarray
    genre_year_affinity: np.ndarray
    genre_hour_affinity: np.ndarray
    genre_names: Tuple[str, ...]

    @property
    def n_genres(self) -> int:
        return len(self.genre_names)

    def movies_of_genre(self, genre: int) -> np.ndarray:
        """Indices of all movies planted in ``genre``."""
        return np.nonzero(self.movie_genre == genre)[0]


def generate_movielens_like(
    n_users: int = 300,
    n_movies: int = 120,
    n_years: int = 12,
    n_hours: int = 24,
    n_ratings: int = 20_000,
    genres: Sequence[str] = DEFAULT_GENRES,
    rating_noise: float = 0.05,
    seed: Optional[int] = None,
) -> MovieLensLike:
    """Generate a MovieLens-like 4-way rating tensor.

    The generative model:

    1. each movie gets one genre; each user gets a Dirichlet preference over
       genres;
    2. each genre gets a smooth affinity curve over years and over hours;
    3. a rating for (user u, movie m, year y, hour h) is
       ``pref[u, g] * year_affinity[g, y] * hour_affinity[g, h]`` plus noise,
       clipped to [0, 1], where ``g`` is the movie's genre;
    4. observed positions are drawn with a bias toward (user, genre) pairs the
       user likes, which mimics the exposure bias of real rating data.
    """
    rng = np.random.default_rng(seed)
    n_genres = len(genres)
    shape = (n_users, n_movies, n_years, n_hours)

    movie_genre = rng.integers(0, n_genres, size=n_movies)
    user_preference = rng.dirichlet(np.full(n_genres, 0.4), size=n_users)

    # Smooth per-genre context curves: a bump at a genre-specific peak.
    years = np.arange(n_years)
    hours = np.arange(n_hours)
    year_peaks = rng.uniform(0, n_years, size=n_genres)
    hour_peaks = rng.uniform(0, n_hours, size=n_genres)
    genre_year_affinity = np.exp(
        -((years[None, :] - year_peaks[:, None]) ** 2) / (2.0 * (n_years / 4.0) ** 2)
    )
    genre_hour_affinity = np.exp(
        -((hours[None, :] - hour_peaks[:, None]) ** 2) / (2.0 * (n_hours / 4.0) ** 2)
    )

    # Exposure: users rate movies of genres they like more often.
    capacity = n_users * n_movies * n_years * n_hours
    n_ratings = min(n_ratings, capacity)
    users = rng.integers(0, n_users, size=n_ratings)
    genre_choice = np.array(
        [rng.choice(n_genres, p=user_preference[u]) for u in users]
    )
    movies = np.empty(n_ratings, dtype=np.int64)
    movies_by_genre: Dict[int, np.ndarray] = {
        g: np.nonzero(movie_genre == g)[0] for g in range(n_genres)
    }
    all_movies = np.arange(n_movies)
    for row, genre in enumerate(genre_choice):
        pool = movies_by_genre[genre]
        if pool.size == 0:
            pool = all_movies
        movies[row] = rng.choice(pool)
    years_idx = rng.integers(0, n_years, size=n_ratings)
    hours_idx = rng.integers(0, n_hours, size=n_ratings)

    genre_of_row = movie_genre[movies]
    base = (
        user_preference[users, genre_of_row]
        * genre_year_affinity[genre_of_row, years_idx]
        * genre_hour_affinity[genre_of_row, hours_idx]
    )
    # Rescale the base signal into a rating-like range before adding noise.
    base = base / (base.max() + 1e-12)
    ratings = np.clip(base + rng.normal(0.0, rating_noise, size=n_ratings), 0.0, 1.0)

    indices = np.stack([users, movies, years_idx, hours_idx], axis=1)
    tensor = SparseTensor(indices, ratings, shape).deduplicate(how="mean")
    return MovieLensLike(
        tensor=tensor,
        movie_genre=movie_genre,
        user_preference=user_preference,
        genre_year_affinity=genre_year_affinity,
        genre_hour_affinity=genre_hour_affinity,
        genre_names=tuple(genres),
    )


def movie_titles(dataset: MovieLensLike) -> List[str]:
    """Synthetic display titles, one per movie, tagged with the planted genre."""
    return [
        f"Movie-{idx:04d} ({dataset.genre_names[genre]})"
        for idx, genre in enumerate(dataset.movie_genre)
    ]
