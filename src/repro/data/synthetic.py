"""Synthetic sparse-tensor generators used throughout the experiments.

The paper's scalability study (Figure 6) runs on random tensors whose order,
dimensionality, number of observed entries and rank are swept one at a time.
Its accuracy study needs tensors with *planted* low-rank Tucker structure so
that test RMSE is meaningful.  Both kinds are generated here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ShapeError
from ..tensor.coo import SparseTensor
from ..tensor.operations import sparse_reconstruct
from ..tensor.validation import check_ranks, check_shape


def _default_rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def random_indices(
    shape: Sequence[int], nnz: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``nnz`` distinct multi-indices uniformly from the tensor grid.

    For tensors whose cell count comfortably exceeds ``nnz`` the draw uses
    rejection-free sampling of linear indices without replacement; otherwise
    it falls back to sampling with replacement followed by deduplication and
    top-up, which terminates because nnz never exceeds the cell count.
    """
    shape = check_shape(shape)
    n_cells = int(np.prod(np.asarray(shape, dtype=np.float64)))
    if nnz > n_cells:
        raise ShapeError(
            f"cannot place {nnz} distinct observed entries in a tensor with "
            f"{n_cells} cells"
        )
    if n_cells <= 10_000_000:
        linear = rng.choice(n_cells, size=nnz, replace=False)
        return np.stack(np.unravel_index(linear, shape), axis=1).astype(np.int64)
    # Sparse regime: collisions are rare, so draw with replacement and patch.
    chosen = set()
    out = np.empty((nnz, len(shape)), dtype=np.int64)
    filled = 0
    while filled < nnz:
        batch = nnz - filled
        draws = np.stack(
            [rng.integers(0, dim, size=batch) for dim in shape], axis=1
        )
        for row in draws:
            key = tuple(int(v) for v in row)
            if key in chosen:
                continue
            chosen.add(key)
            out[filled] = row
            filled += 1
            if filled == nnz:
                break
    return out


def random_sparse_tensor(
    shape: Sequence[int],
    nnz: int,
    seed: Optional[int] = None,
    value_low: float = 0.0,
    value_high: float = 1.0,
) -> SparseTensor:
    """Random sparse tensor with uniform values in ``[value_low, value_high)``.

    This reproduces the synthetic tensors of Section IV-B1: "random tensors
    ... with real-valued entries between 0 and 1".
    """
    rng = _default_rng(seed)
    indices = random_indices(shape, nnz, rng)
    values = rng.uniform(value_low, value_high, size=nnz)
    return SparseTensor(indices, values, shape)


@dataclass(frozen=True)
class PlantedTensor:
    """A sparse tensor with known Tucker structure.

    Attributes
    ----------
    tensor:
        The observed (possibly noisy) sparse tensor.
    core:
        Ground-truth core tensor.
    factors:
        Ground-truth factor matrices.
    noise_level:
        Standard deviation of the additive Gaussian noise.
    """

    tensor: SparseTensor
    core: np.ndarray
    factors: Tuple[np.ndarray, ...]
    noise_level: float


def planted_tucker_tensor(
    shape: Sequence[int],
    ranks: Sequence[int],
    nnz: int,
    noise_level: float = 0.0,
    seed: Optional[int] = None,
    factor_scale: float = 1.0,
) -> PlantedTensor:
    """Sparse tensor sampled from a ground-truth Tucker model plus noise.

    Observed values are ``(G ×_1 A^(1) ... ×_N A^(N))_α + ε`` at ``nnz``
    uniformly chosen positions, with ``ε ~ N(0, noise_level²)``.  The planted
    core and factors are returned so tests can verify recovery quality.
    """
    shape = check_shape(shape)
    ranks = check_ranks(ranks, shape)
    rng = _default_rng(seed)
    factors = tuple(
        rng.uniform(0.0, factor_scale, size=(dim, rank))
        for dim, rank in zip(shape, ranks)
    )
    core = rng.uniform(0.0, 1.0, size=ranks)
    indices = random_indices(shape, nnz, rng)
    pattern = SparseTensor(indices, np.zeros(nnz), shape)
    clean = sparse_reconstruct(pattern, core, list(factors))
    noise = rng.normal(0.0, noise_level, size=nnz) if noise_level > 0 else 0.0
    tensor = SparseTensor(indices, clean + noise, shape)
    return PlantedTensor(tensor=tensor, core=core, factors=factors, noise_level=noise_level)


def block_structured_tensor(
    shape: Sequence[int],
    n_blocks: int,
    nnz: int,
    within_block_value: float = 1.0,
    noise_level: float = 0.05,
    seed: Optional[int] = None,
) -> Tuple[SparseTensor, Tuple[np.ndarray, ...]]:
    """Sparse tensor with co-clustered block structure.

    Every mode's indices are partitioned into ``n_blocks`` groups; entries
    whose indices all fall into the same group carry a high value, others a
    low one.  The per-mode group assignments are returned so the discovery
    tests (K-means on factor rows, Table V) can check that clusters align
    with the planted groups.
    """
    shape = check_shape(shape)
    if n_blocks <= 0:
        raise ShapeError("n_blocks must be positive")
    rng = _default_rng(seed)
    assignments = tuple(rng.integers(0, n_blocks, size=dim) for dim in shape)
    indices = random_indices(shape, nnz, rng)
    groups = np.stack(
        [assignments[m][indices[:, m]] for m in range(len(shape))], axis=1
    )
    same_block = np.all(groups == groups[:, :1], axis=1)
    values = np.where(same_block, within_block_value, 0.1 * within_block_value)
    values = values + rng.normal(0.0, noise_level, size=nnz)
    return SparseTensor(indices, values, shape), assignments
