"""Shared base class for the HOOI-style Tucker baselines.

Tucker-ALS (Algorithm 1), Tucker-CSF and S-HOT all follow the higher-order
orthogonal iteration (HOOI) template: for each mode, form
``Y = X ×_{k≠n} A^(k)T`` treating missing entries as zeros, take the leading
left singular vectors of ``Y_(n)`` as the new factor, and finally compute the
core as ``X ×_1 A^(1)T ... ×_N A^(N)T``.  The three baselines differ only in
*how* they compute ``Y_(n)`` (dense, CSF-accelerated, or on the fly) and in
how much intermediate memory that takes — which is exactly the axis the paper
compares them on.

Subclasses implement :meth:`_factor_update_matrix` and
:meth:`_intermediate_bytes`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import PTuckerConfig
from ..core.result import TuckerResult
from ..core.trace import ConvergenceTrace, IterationRecord
from ..metrics.errors import reconstruction_error, regularized_loss
from ..metrics.memory import MemoryTracker
from ..metrics.timing import IterationTimer
from ..tensor.coo import SparseTensor
from ..tensor.operations import factor_rows_product


def leading_left_singular_vectors(
    matrix: Optional[np.ndarray],
    gram: Optional[np.ndarray],
    rank: int,
    producer=None,
) -> np.ndarray:
    """Leading left singular vectors of ``Y_(n)``.

    Either ``matrix`` (``Y_(n)`` itself) or ``gram`` (``Y_(n)^T Y_(n)``)
    must be given.  With only the Gram matrix, the right singular vectors V
    and singular values σ come from its eigendecomposition and the left
    vectors are recovered as ``U = Y V σ^{-1}`` through ``producer``, a
    callable mapping ``V_scaled`` to ``Y @ V_scaled`` without materialising
    ``Y`` (the S-HOT strategy).
    """
    if matrix is not None:
        u_matrix, _, _ = np.linalg.svd(matrix, full_matrices=False)
        return u_matrix[:, :rank]
    if gram is None or producer is None:
        raise ValueError("need either the matrix or (gram, producer)")
    eigenvalues, eigenvectors = np.linalg.eigh(gram)
    order = np.argsort(-eigenvalues)
    eigenvalues = np.clip(eigenvalues[order], 0.0, None)
    eigenvectors = eigenvectors[:, order]
    top_values = eigenvalues[:rank]
    top_vectors = eigenvectors[:, :rank]
    sigma = np.sqrt(top_values)
    sigma[sigma < 1e-12] = 1.0
    return producer(top_vectors / sigma[None, :])


class HooiBaseline:
    """Template for baselines built on higher-order orthogonal iteration."""

    name = "HOOI"
    #: whether the method's predictions treat missing entries as zeros
    zero_fill = True

    def __init__(self, config: Optional[PTuckerConfig] = None) -> None:
        self.config = config if config is not None else PTuckerConfig()

    # ------------------------------------------------------------------
    def _initial_factors(
        self, tensor: SparseTensor, ranks: Sequence[int], rng: np.random.Generator
    ) -> List[np.ndarray]:
        """Random orthonormal starting factors (HOOI needs orthonormal columns)."""
        factors = []
        for dim, rank in zip(tensor.shape, ranks):
            matrix = rng.standard_normal((dim, rank))
            q_matrix, _ = np.linalg.qr(matrix)
            factors.append(q_matrix)
        return factors

    def _factor_update_matrix(
        self,
        tensor: SparseTensor,
        factors: List[np.ndarray],
        mode: int,
        rank: int,
        memory: Optional[MemoryTracker],
    ) -> np.ndarray:
        """Return the new factor matrix for ``mode`` (the HOOI SVD step)."""
        raise NotImplementedError

    def _intermediate_bytes(
        self, tensor: SparseTensor, ranks: Sequence[int], mode: int
    ) -> float:
        """Intermediate-data bytes this method needs to update one mode."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _core_from_factors(
        self, tensor: SparseTensor, factors: Sequence[np.ndarray]
    ) -> np.ndarray:
        """Core tensor ``X ×_1 A^(1)T ... ×_N A^(N)T`` over the observed entries.

        With zero-filled semantics the missing cells contribute nothing to the
        projection, so the core is a sum over observed entries of
        ``X_α · ⊗_k A^(k)[i_k, :]``.
        """
        ranks = tuple(int(np.asarray(f).shape[1]) for f in factors)
        weights = factor_rows_product(tensor, list(factors), skip=-1)
        flat = weights.T @ tensor.values
        return flat.reshape(ranks)

    # ------------------------------------------------------------------
    def fit(self, tensor: SparseTensor) -> TuckerResult:
        """Run HOOI until the reconstruction error converges."""
        config = self.config
        ranks = config.resolve_ranks(tensor.order)
        rng = np.random.default_rng(config.seed)
        factors = self._initial_factors(tensor, ranks, rng)

        memory = (
            MemoryTracker(budget_bytes=config.memory_budget_bytes)
            if config.track_memory
            else None
        )
        trace = ConvergenceTrace()
        timer = IterationTimer()
        core = self._core_from_factors(tensor, factors)

        for iteration in range(1, config.max_iterations + 1):
            with timer.iteration():
                for mode in range(tensor.order):
                    if memory is not None:
                        memory.allocate(
                            self._intermediate_bytes(tensor, ranks, mode),
                            f"{self.name}-mode-{mode}",
                        )
                    factors[mode] = self._factor_update_matrix(
                        tensor, factors, mode, ranks[mode], memory
                    )
                    if memory is not None:
                        memory.release(
                            self._intermediate_bytes(tensor, ranks, mode),
                            f"{self.name}-mode-{mode}",
                        )
                core = self._core_from_factors(tensor, factors)
                error = reconstruction_error(tensor, core, factors)
                loss = regularized_loss(tensor, core, factors, config.regularization)

            trace.add(
                IterationRecord(
                    iteration=iteration,
                    reconstruction_error=error,
                    loss=loss,
                    seconds=timer.seconds[-1],
                    core_nnz=int(np.count_nonzero(core)),
                )
            )
            if (
                iteration >= config.min_iterations
                and trace.relative_change() < config.tolerance
            ):
                trace.converged = True
                trace.stop_reason = (
                    f"relative error change below tolerance {config.tolerance}"
                )
                break
        else:
            trace.stop_reason = f"reached max_iterations={config.max_iterations}"

        return TuckerResult(
            core=core,
            factors=list(factors),
            trace=trace,
            memory=memory,
            algorithm=self.name,
        )
