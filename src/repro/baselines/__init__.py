"""Baseline Tucker and CP factorization methods the paper compares against."""

from .base import HooiBaseline, leading_left_singular_vectors
from .cp_als import CpAls
from .s_hot import SHot
from .tucker_als import TuckerAls
from .tucker_csf import TuckerCsf
from .tucker_wopt import TuckerWopt

__all__ = [
    "HooiBaseline",
    "leading_left_singular_vectors",
    "TuckerAls",
    "TuckerCsf",
    "SHot",
    "TuckerWopt",
    "CpAls",
]
