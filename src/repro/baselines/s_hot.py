"""S-HOT: scalable high-order Tucker decomposition with on-the-fly computation.

The baseline of Oh et al. (WSDM 2017) as used in the paper: HOOI where the
dense intermediate ``Y_(n)`` is never materialised.  Instead the small Gram
matrix ``Y_(n)^T Y_(n)`` (of size ``Π_{k≠n} J_k`` squared) is accumulated
slice by slice; its eigendecomposition gives the right singular vectors, and
the left singular vectors (the new factor) are recovered with one more
streaming pass ``U = Y V σ^{-1}``.  This avoids the M-bottleneck of
MET/HaTen2 but keeps the zero-fill semantics, so its accuracy matches
Tucker-ALS while its intermediate memory is tiny.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..metrics.memory import BYTES_PER_FLOAT, MemoryTracker
from ..tensor.coo import SparseTensor
from ..tensor.operations import sparse_gram_chain, sparse_ttm_chain
from .base import HooiBaseline, leading_left_singular_vectors


class SHot(HooiBaseline):
    """HOOI with on-the-fly Gram accumulation instead of a dense Y_(n)."""

    name = "S-HOT"

    def _factor_update_matrix(
        self,
        tensor: SparseTensor,
        factors: List[np.ndarray],
        mode: int,
        rank: int,
        memory: Optional[MemoryTracker],
    ) -> np.ndarray:
        gram = sparse_gram_chain(tensor, factors, mode)

        def producer(v_scaled: np.ndarray) -> np.ndarray:
            # One streaming pass: U = Y_(n) (V sigma^-1).  sparse_ttm_chain walks
            # the observed entries once; the (I_n x rank) product is the only
            # mode-sized array formed, matching S-HOT's memory profile.
            y_unfolded = sparse_ttm_chain(tensor, factors, mode)
            return y_unfolded @ v_scaled

        return leading_left_singular_vectors(None, gram, rank, producer=producer)

    def _intermediate_bytes(
        self, tensor: SparseTensor, ranks: Sequence[int], mode: int
    ) -> float:
        """The Gram matrix (Π_{k≠n} J_k)² plus the I_n × J_n output block."""
        width = 1.0
        for k, rank in enumerate(ranks):
            if k != mode:
                width *= float(rank)
        gram_bytes = width * width * BYTES_PER_FLOAT
        output_bytes = float(tensor.shape[mode]) * float(ranks[mode]) * BYTES_PER_FLOAT
        return gram_bytes + output_bytes
