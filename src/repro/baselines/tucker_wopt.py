"""Tucker-wOpt: weighted-optimisation Tucker factorization on observed entries.

The accuracy-focused baseline (Filipovic & Jukic, 2015) as the paper uses it:
the loss is the same observed-entry objective as P-Tucker's Eq. (6) (without
the L2 penalty in the original formulation), but the optimisation runs a
gradient method over *dense* intermediates.  Each gradient evaluation builds
the dense weighted residual tensor ``W * (X - G ×_1 A^(1) ... ×_N A^(N))``
(W is the observation indicator), whose size is the full I^N grid — the
O(I^{N-1} J)-and-worse memory profile of Table III that makes the method run
out of memory on every large tensor in Figures 6, 7 and 11.

The optimiser here is gradient descent with backtracking line search on the
factors and core jointly, which preserves the method's defining properties:
accuracy comparable to P-Tucker on small tensors, dense-grid memory use, and
per-iteration cost proportional to I^N.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import PTuckerConfig
from ..core.result import TuckerResult
from ..core.trace import ConvergenceTrace, IterationRecord
from ..metrics.errors import reconstruction_error, regularized_loss
from ..metrics.memory import BYTES_PER_FLOAT, MemoryTracker
from ..metrics.timing import IterationTimer
from ..tensor.coo import SparseTensor
from ..tensor.dense import mode_product, tucker_reconstruct, unfold


class TuckerWopt:
    """Gradient-based Tucker factorization over the observed entries."""

    name = "Tucker-wOpt"
    zero_fill = False

    def __init__(self, config: Optional[PTuckerConfig] = None) -> None:
        self.config = config if config is not None else PTuckerConfig()

    # ------------------------------------------------------------------
    def _dense_bytes(self, tensor: SparseTensor) -> float:
        """Size of one dense I_1 x ... x I_N intermediate."""
        cells = 1.0
        for dim in tensor.shape:
            cells *= float(dim)
        return cells * BYTES_PER_FLOAT

    def _gradients(
        self,
        weight: np.ndarray,
        dense_x: np.ndarray,
        core: np.ndarray,
        factors: List[np.ndarray],
    ) -> Tuple[np.ndarray, List[np.ndarray], float]:
        """Gradient of the observed-entry squared error w.r.t. core and factors."""
        model = tucker_reconstruct(core, factors)
        residual = weight * (model - dense_x)
        loss = float(np.sum(residual * (model - dense_x)))

        factor_grads: List[np.ndarray] = []
        for mode, factor in enumerate(factors):
            others = [
                f if k != mode else np.eye(f.shape[1])
                for k, f in enumerate(factors)
            ]
            projected = core
            for k, f in enumerate(factors):
                if k == mode:
                    continue
                projected = mode_product(projected, f, k)
            grad = 2.0 * unfold(residual, mode) @ unfold(projected, mode).T
            factor_grads.append(grad)

        core_grad = residual
        for mode, factor in enumerate(factors):
            core_grad = mode_product(core_grad, factor.T, mode)
        core_grad = 2.0 * core_grad
        return core_grad, factor_grads, loss

    # ------------------------------------------------------------------
    def fit(self, tensor: SparseTensor) -> TuckerResult:
        """Fit the model with gradient descent over dense intermediates."""
        config = self.config
        ranks = config.resolve_ranks(tensor.order)
        rng = np.random.default_rng(config.seed)

        memory = (
            MemoryTracker(budget_bytes=config.memory_budget_bytes)
            if config.track_memory
            else None
        )
        # The dense observation mask, the dense data tensor and the dense
        # residual are the defining intermediates of this method; account for
        # them before allocating so a tight budget reproduces the O.O.M.
        if memory is not None:
            memory.allocate(3.0 * self._dense_bytes(tensor), "dense-intermediates")

        dense_x = tensor.to_dense()
        weight = np.zeros(tensor.shape, dtype=np.float64)
        if tensor.nnz:
            weight[tuple(tensor.indices.T)] = 1.0

        factors = [
            rng.uniform(0.0, 1.0, size=(dim, rank))
            for dim, rank in zip(tensor.shape, ranks)
        ]
        core = rng.uniform(0.0, 1.0, size=ranks)

        trace = ConvergenceTrace()
        timer = IterationTimer()
        step = 1.0

        for iteration in range(1, config.max_iterations + 1):
            with timer.iteration():
                core_grad, factor_grads, current_loss = self._gradients(
                    weight, dense_x, core, factors
                )
                # Backtracking line search on the joint step.
                improved = False
                for _ in range(20):
                    new_core = core - step * core_grad
                    new_factors = [
                        f - step * g for f, g in zip(factors, factor_grads)
                    ]
                    model = tucker_reconstruct(new_core, new_factors)
                    new_loss = float(np.sum(weight * (model - dense_x) ** 2))
                    if new_loss < current_loss:
                        improved = True
                        break
                    step *= 0.5
                if improved:
                    core, factors = new_core, new_factors
                    step *= 1.2
                error = reconstruction_error(tensor, core, factors)
                loss = regularized_loss(tensor, core, factors, config.regularization)

            trace.add(
                IterationRecord(
                    iteration=iteration,
                    reconstruction_error=error,
                    loss=loss,
                    seconds=timer.seconds[-1],
                    core_nnz=int(np.count_nonzero(core)),
                )
            )
            if (
                iteration >= config.min_iterations
                and trace.relative_change() < config.tolerance
            ):
                trace.converged = True
                trace.stop_reason = (
                    f"relative error change below tolerance {config.tolerance}"
                )
                break
        else:
            trace.stop_reason = f"reached max_iterations={config.max_iterations}"

        if memory is not None:
            memory.release(3.0 * self._dense_bytes(tensor), "dense-intermediates")

        return TuckerResult(
            core=core,
            factors=factors,
            trace=trace,
            memory=memory,
            algorithm=self.name,
        )
