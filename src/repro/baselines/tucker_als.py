"""Tucker-ALS / HOOI (Algorithm 1 of the paper).

The conventional higher-order orthogonal iteration: every mode update forms
the dense matrix ``Y_(n) = (X ×_{k≠n} A^(k)T)_(n)`` — treating missing
entries as zeros — and replaces the factor with its leading left singular
vectors.  The intermediate ``Y_(n)`` is ``I_n × Π_{k≠n} J_k`` dense, which is
the "intermediate data explosion" the paper's Definition 7 describes and the
reason this baseline runs out of memory on large tensors.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..metrics.memory import BYTES_PER_FLOAT, MemoryTracker
from ..tensor.coo import SparseTensor
from ..tensor.operations import mode_lengths_product, sparse_ttm_chain
from .base import HooiBaseline, leading_left_singular_vectors


class TuckerAls(HooiBaseline):
    """Conventional Tucker-ALS (HOOI) with dense intermediates."""

    name = "Tucker-ALS"

    def _factor_update_matrix(
        self,
        tensor: SparseTensor,
        factors: List[np.ndarray],
        mode: int,
        rank: int,
        memory: Optional[MemoryTracker],
    ) -> np.ndarray:
        y_unfolded = sparse_ttm_chain(tensor, factors, mode)
        return leading_left_singular_vectors(y_unfolded, None, rank)

    def _intermediate_bytes(
        self, tensor: SparseTensor, ranks: Sequence[int], mode: int
    ) -> float:
        """The dense Y_(n): I_n rows by Π_{k≠n} J_k columns."""
        width = 1.0
        for k, rank in enumerate(ranks):
            if k != mode:
                width *= float(rank)
        return float(tensor.shape[mode]) * width * BYTES_PER_FLOAT
