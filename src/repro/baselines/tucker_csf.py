"""Tucker-CSF: HOOI with CSF-accelerated tensor-times-matrix chains.

The baseline of Smith & Karypis (Euro-Par 2017) as the paper uses it: the
sparse tensor is stored once as a compressed sparse fiber tree and the TTMc
``Y_(n) = (X ×_{k≠n} A^(k)T)_(n)`` is evaluated by walking the tree so
partial products are shared across entries with common index prefixes.  The
method is faster than entry-at-a-time HOOI but still materialises the dense
``Y_(n)`` and still treats missing entries as zeros, which is what limits its
accuracy in Figure 11.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.config import PTuckerConfig
from ..metrics.memory import BYTES_PER_FLOAT, MemoryTracker
from ..tensor.coo import SparseTensor
from ..tensor.csf import CsfTensor
from .base import HooiBaseline, leading_left_singular_vectors


class TuckerCsf(HooiBaseline):
    """HOOI whose TTM chain runs over a compressed sparse fiber tree."""

    name = "Tucker-CSF"

    def __init__(self, config: Optional[PTuckerConfig] = None) -> None:
        super().__init__(config)
        self._csf: Optional[CsfTensor] = None

    def _ensure_csf(self, tensor: SparseTensor) -> CsfTensor:
        if self._csf is None or self._csf.nnz != tensor.nnz:
            self._csf = CsfTensor.from_sparse(tensor)
        return self._csf

    def _factor_update_matrix(
        self,
        tensor: SparseTensor,
        factors: List[np.ndarray],
        mode: int,
        rank: int,
        memory: Optional[MemoryTracker],
    ) -> np.ndarray:
        csf = self._ensure_csf(tensor)
        y_unfolded = csf.ttm_chain(factors, mode)
        return leading_left_singular_vectors(y_unfolded, None, rank)

    def _intermediate_bytes(
        self, tensor: SparseTensor, ranks: Sequence[int], mode: int
    ) -> float:
        """Dense Y_(n) plus the (one-off, amortised) CSF node storage."""
        width = 1.0
        for k, rank in enumerate(ranks):
            if k != mode:
                width *= float(rank)
        y_bytes = float(tensor.shape[mode]) * width * BYTES_PER_FLOAT
        csf_bytes = 0.0
        if self._csf is not None:
            csf_bytes = self._csf.n_nodes() * 2 * BYTES_PER_FLOAT / tensor.order
        return y_bytes + csf_bytes
