"""CP-ALS on observed entries: the CP-decomposition reference.

The paper positions Tucker factorization as a generalisation of
CANDECOMP/PARAFAC (Section II-C) and cites row-wise ALS CP methods (CDTF /
SALS) as the closest prior work.  This module implements the sparse,
observed-entries-only CP-ALS with the same row-wise update structure as
P-Tucker, which makes it both a useful library feature (CP completion) and
the natural ablation: P-Tucker restricted to a super-diagonal core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..core.config import PTuckerConfig
from ..core.result import TuckerResult
from ..core.trace import ConvergenceTrace, IterationRecord
from ..metrics.errors import reconstruction_error, regularized_loss
from ..metrics.timing import IterationTimer
from ..tensor.coo import SparseTensor


def _khatri_rao_rows(
    factors: Sequence[np.ndarray], indices: np.ndarray, skip: int
) -> np.ndarray:
    """Element-wise product of the other factors' rows for each observed entry.

    For CP the "delta" of entry α in mode n is simply
    ``Π_{k≠n} a^(k)[i_k, :]`` (component-wise), a length-R vector.
    """
    n_entries = indices.shape[0]
    rank = factors[0].shape[1]
    out = np.ones((n_entries, rank), dtype=np.float64)
    for k, factor in enumerate(factors):
        if k == skip:
            continue
        out *= np.asarray(factor)[indices[:, k]]
    return out


class CpAls:
    """Sparse CP-ALS with row-wise updates over observed entries only."""

    name = "CP-ALS"
    zero_fill = False

    def __init__(self, config: Optional[PTuckerConfig] = None) -> None:
        self.config = config if config is not None else PTuckerConfig()

    # ------------------------------------------------------------------
    def _cp_core(self, rank: int, order: int, weights: np.ndarray) -> np.ndarray:
        """Super-diagonal Tucker core carrying the CP component weights."""
        core = np.zeros((rank,) * order, dtype=np.float64)
        idx = np.arange(rank)
        core[tuple(idx for _ in range(order))] = weights
        return core

    def fit(self, tensor: SparseTensor) -> TuckerResult:
        """Fit a rank-R CP model; the result is returned in Tucker form."""
        config = self.config
        ranks = config.resolve_ranks(tensor.order)
        rank = ranks[0]
        if any(r != rank for r in ranks):
            raise ValueError("CP requires the same rank for every mode")
        rng = np.random.default_rng(config.seed)
        factors: List[np.ndarray] = [
            rng.uniform(0.0, 1.0, size=(dim, rank)) for dim in tensor.shape
        ]
        weights = np.ones(rank, dtype=np.float64)

        trace = ConvergenceTrace()
        timer = IterationTimer()

        for iteration in range(1, config.max_iterations + 1):
            with timer.iteration():
                for mode in range(tensor.order):
                    deltas = _khatri_rao_rows(factors, tensor.indices, mode)
                    deltas = deltas * weights[None, :]
                    mode_rows = tensor.indices[:, mode]
                    dim = tensor.shape[mode]
                    gram = np.zeros((dim, rank, rank))
                    rhs = np.zeros((dim, rank))
                    np.add.at(gram, mode_rows, deltas[:, :, None] * deltas[:, None, :])
                    np.add.at(rhs, mode_rows, tensor.values[:, None] * deltas)
                    systems = gram + config.regularization * np.eye(rank)[None, :, :]
                    factors[mode] = np.linalg.solve(systems, rhs[:, :, None])[:, :, 0]
                    # Re-normalise columns into the weight vector to keep factors
                    # bounded.  The solved factor absorbs 1/lambda (its deltas already
                    # carry the old weights), so the new weights are old * norm.
                    norms = np.linalg.norm(factors[mode], axis=0)
                    norms[norms < 1e-12] = 1.0
                    factors[mode] /= norms[None, :]
                    weights = weights * norms

                core = self._cp_core(rank, tensor.order, weights)
                error = reconstruction_error(tensor, core, factors)
                loss = regularized_loss(tensor, core, factors, config.regularization)

            trace.add(
                IterationRecord(
                    iteration=iteration,
                    reconstruction_error=error,
                    loss=loss,
                    seconds=timer.seconds[-1],
                    core_nnz=rank,
                )
            )
            if (
                iteration >= config.min_iterations
                and trace.relative_change() < config.tolerance
            ):
                trace.converged = True
                trace.stop_reason = (
                    f"relative error change below tolerance {config.tolerance}"
                )
                break
        else:
            trace.stop_reason = f"reached max_iterations={config.max_iterations}"

        core = self._cp_core(rank, tensor.order, weights)
        return TuckerResult(
            core=core,
            factors=factors,
            trace=trace,
            memory=None,
            algorithm=self.name,
        )
