"""Fitted-model round trip: one ``.npz`` save/load pair for the whole repo.

The CLI, the serving layer, tests and notebooks all need to move a fitted
:class:`~repro.core.result.TuckerResult` (factors + core) between
processes.  Historically only :mod:`repro.cli` could write the ``.npz``
and every consumer re-parsed it by hand; this module is the single
implementation both sides use:

* :func:`save_model` — atomic ``<prefix>.npz`` write (temp file, fsync,
  rename) holding the core, every factor, the algorithm name and a
  ``digest`` — a SHA-256 over the shapes, ranks and raw float bytes — so
  a torn or bit-flipped archive is detected at load instead of silently
  serving a wrong model.
* :func:`load_model` — the round trip, with structural validation: the
  factor count must match the core order, each factor's column count must
  match the core's extent on that mode, and the digest (when present;
  archives written before it existed still load) must verify.  Violations
  raise :class:`~repro.exceptions.DataFormatError` naming the file and
  the mismatch — never a downstream shape surprise.
* :func:`load_result` — accepts either a model ``.npz`` *or* a
  checkpoint directory written by
  :class:`~repro.resilience.checkpoint.CheckpointManager` (the newest
  valid checkpoint is used, checksums verified), optionally memory-mapping
  the factor arrays so a million-row model can be served without copying
  it into RAM up front.
"""

from __future__ import annotations

import hashlib
import os
from typing import List

import numpy as np

from .core.result import TuckerResult
from .exceptions import DataFormatError
from .resilience.atomic import atomic_open

#: ``format`` field stored inside every model archive written here.
MODEL_FORMAT = "repro-model"

#: Current model archive schema version.
MODEL_VERSION = 1


def model_digest(core: np.ndarray, factors: List[np.ndarray]) -> str:
    """SHA-256 over shapes, ranks and raw float64 bytes of a model.

    Canonicalised to C-contiguous float64, so the digest is a property of
    the model's values, not of memory layout or dtype accidents.
    """
    digest = hashlib.sha256()
    digest.update(repr(tuple(core.shape)).encode("ascii"))
    digest.update(np.ascontiguousarray(core, dtype=np.float64).tobytes())
    for factor in factors:
        digest.update(repr(tuple(factor.shape)).encode("ascii"))
        digest.update(np.ascontiguousarray(factor, dtype=np.float64).tobytes())
    return digest.hexdigest()


def validate_model(core: np.ndarray, factors: List[np.ndarray], where: str) -> None:
    """Raise :class:`DataFormatError` unless factors and core are consistent."""
    if core.ndim != len(factors):
        raise DataFormatError(
            f"{where}: model is inconsistent — core has {core.ndim} modes "
            f"but {len(factors)} factor matrices were stored"
        )
    for mode, factor in enumerate(factors):
        if factor.ndim != 2:
            raise DataFormatError(
                f"{where}: factor_{mode} is {factor.ndim}-dimensional; "
                "factor matrices must be 2-D (rows x rank)"
            )
        if factor.shape[1] != core.shape[mode]:
            raise DataFormatError(
                f"{where}: rank mismatch on mode {mode} — factor_{mode} has "
                f"{factor.shape[1]} columns but the core's extent there is "
                f"{core.shape[mode]}"
            )


def save_model(result: TuckerResult, prefix: str) -> str:
    """Store a fitted model as ``<prefix>.npz`` and return the file name.

    The archive is written atomically (temporary file, fsync, rename), so
    a crash mid-save leaves the previous model intact instead of a torn
    half-archive, and carries a content digest for load-time verification.
    """
    factors = [np.asarray(f) for f in result.factors]
    core = np.asarray(result.core)
    validate_model(core, factors, prefix)
    arrays = {
        "core": core,
        "algorithm": np.asarray(result.algorithm),
        "format": np.asarray(MODEL_FORMAT),
        "version": np.asarray(MODEL_VERSION),
        "digest": np.asarray(model_digest(core, factors)),
    }
    for mode, factor in enumerate(factors):
        arrays[f"factor_{mode}"] = factor
    path = f"{prefix}.npz"
    with atomic_open(path) as handle:
        np.savez_compressed(handle, **arrays)
    return path


def load_model(path: str) -> TuckerResult:
    """Load a model ``.npz`` written by :func:`save_model`, verified.

    Archives from before the digest existed (the CLI's original
    ``save_model``) load fine — they simply skip the content check; the
    structural rank/shape validation always runs.
    """
    try:
        data = np.load(path, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise DataFormatError(f"{path}: cannot read model archive: {exc}") from exc
    with data:
        if "core" not in data:
            raise DataFormatError(
                f"{path}: not a model archive (no 'core' array); expected "
                "an .npz written by save_model / the CLI --output flag"
            )
        core = data["core"]
        factors: List[np.ndarray] = []
        mode = 0
        while f"factor_{mode}" in data:
            factors.append(data[f"factor_{mode}"])
            mode += 1
        if not factors:
            raise DataFormatError(
                f"{path}: model archive holds no factor matrices"
            )
        algorithm = str(data["algorithm"]) if "algorithm" in data else ""
        stored_digest = str(data["digest"]) if "digest" in data else ""
    validate_model(core, factors, path)
    if stored_digest:
        actual = model_digest(core, factors)
        if actual != stored_digest:
            raise DataFormatError(
                f"{path}: model archive is corrupt — content digest "
                f"{actual[:12]}… does not match the stored "
                f"{stored_digest[:12]}…"
            )
    return TuckerResult(core=core, factors=factors, algorithm=algorithm)


def _load_checkpoint_result(directory: str, mmap: bool) -> TuckerResult:
    """Newest valid checkpoint of a fit, as a result (optionally mmap'd)."""
    from .resilience.checkpoint import CheckpointManager

    manager = CheckpointManager(directory)
    latest = manager.latest_iteration()
    if latest is None:
        raise DataFormatError(
            f"{directory}: no complete checkpoint found (a directory is a "
            "model source only when it holds iterNNNNNNN checkpoints with "
            "manifests, or pass a model .npz instead)"
        )
    # Checksums first — corruption surfaces as a named DataFormatError with
    # the fall-back checkpoint, exactly as resume diagnoses it.
    manager.validate(latest)
    state = manager.load(latest)
    if not mmap:
        result = TuckerResult(
            core=state.core, factors=state.factors, algorithm="ptucker"
        )
        validate_model(result.core, result.factors, directory)
        return result
    iter_dir = manager.iter_dir(latest)
    mmap_factors = [
        np.load(
            os.path.join(iter_dir, f"factor{mode}.npy"),
            allow_pickle=False,
            mmap_mode="r",
        )
        for mode in range(len(state.factors))
    ]
    validate_model(state.core, mmap_factors, directory)
    return TuckerResult(core=state.core, factors=mmap_factors, algorithm="ptucker")


def load_result(path: str, mmap: bool = False) -> TuckerResult:
    """Load a fitted model from a ``.npz`` file or a checkpoint directory.

    ``mmap=True`` memory-maps the factor matrices read-only instead of
    copying them into RAM; it applies to checkpoint directories only
    (plain ``.npy`` files) — ``.npz`` archives are zip-compressed and are
    always decompressed (a :class:`DataFormatError` says so rather than
    silently ignoring the flag).
    """
    if os.path.isdir(path):
        return _load_checkpoint_result(path, mmap)
    if mmap:
        raise DataFormatError(
            f"{path}: mmap loading needs a checkpoint directory of .npy "
            "files; .npz archives are compressed and cannot be mapped"
        )
    return load_model(path)
