"""Out-of-core sharded sweeps: mmap COO shard store + streaming executor.

P-Tucker's row-wise update only ever reads a row's own entry slice
Omega_in (Section III-B of the paper), so a sweep does not need the tensor
in RAM: mode-sorted entries can stream from disk while updates land on
disjoint row ranges.  This package provides the two pieces:

* :class:`~repro.shards.store.ShardStore` — converts a
  :class:`~repro.tensor.coo.SparseTensor` into per-mode, mode-sorted,
  memory-mapped COO shards on disk (format v2: one narrow ``.npy`` file
  per index column — ``uint8``/``uint16``/``uint32``/``int64`` by mode
  dimension — plus float64 values and a JSON manifest recording column
  dtypes, per-shard entry ranges, row ranges and segment offsets; the
  layout is documented in the :mod:`~repro.shards.store` docstring and in
  ``docs/ARCHITECTURE.md``).  Blocks read back as zero-copy narrow
  :class:`~repro.columns.IndexColumns` that every kernel backend consumes
  without widening.  Retired v1 directories are migrated by
  :func:`~repro.shards.legacy.migrate_v1_store` (CLI ``shards-migrate``).
* :class:`~repro.shards.executor.ShardedSweepExecutor` — streams the
  shards one block at a time, runs each block through any registered
  kernel backend (``numpy`` / ``threaded`` / ``numba`` / ``auto``), and
  merges the per-row results — bitwise-equal to the in-core sweep, with a
  resident working set bounded by ``block_size`` instead of nnz.  Its
  :meth:`~repro.shards.executor.ShardedSweepExecutor.fit` runs the whole
  P-Tucker loop out of core.
* :mod:`~repro.shards.merge` — the external-memory build behind
  :meth:`~repro.shards.store.ShardStore.build_streaming`: chunks from any
  entry reader (:mod:`repro.tensor.io`) are spilled as per-mode sorted
  runs and k-way merged into the same shard layout, bitwise-identical to
  the in-RAM build, with peak memory bounded by the chunk size.  This
  closes the last in-RAM stage of the pipeline: a raw text file becomes a
  store — and a fitted model — without the tensor ever existing in RAM.

Entry points elsewhere in the library: ``update_factor_mode(source=store)``
streams a single mode update, ``PTuckerConfig(shard_dir=..., shard_nnz=...,
ingest_chunk_nnz=...)`` routes a whole
:meth:`~repro.core.ptucker.PTucker.fit` through a store,
:meth:`~repro.core.ptucker.PTucker.fit_streaming` fits straight from a
chunked reader, ``repro.tensor.io.save_shards`` / ``load_shards`` import
and export stores (``save_shards(source=...)`` builds out of core),
``parallel_update_factor_mode(source=store)`` feeds the process-pool
workers from shards, and the CLI exposes ``--shards DIR`` plus the
streaming ``ingest`` command and ``fit --from-text``.
"""

from .store import (
    DEFAULT_SHARD_NNZ,
    FORMAT_NAME,
    FORMAT_VERSION,
    LEGACY_FORMAT_VERSION,
    MANIFEST_NAME,
    ShardInfo,
    ShardStore,
)
from .executor import ShardedSweepExecutor
from .legacy import V1StoreReader, is_v1_store, migrate_v1_store
from .merge import streaming_build

__all__ = [
    "DEFAULT_SHARD_NNZ",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "LEGACY_FORMAT_VERSION",
    "MANIFEST_NAME",
    "ShardInfo",
    "ShardStore",
    "ShardedSweepExecutor",
    "V1StoreReader",
    "is_v1_store",
    "migrate_v1_store",
    "streaming_build",
]
