"""Streaming sweeps over a shard store: out-of-core P-Tucker.

:class:`ShardedSweepExecutor` drives the row-wise update of
:mod:`repro.core.row_update` from a :class:`~repro.shards.store.ShardStore`
instead of an in-RAM :class:`~repro.core.row_update.ModeContext`: shards are
memory-mapped and streamed one ``block_size`` run of entries at a time, each
block's normal equations are computed by any registered kernel backend
(``numpy`` / ``threaded`` / ``numba`` / ``auto``), and the per-row partial
sums are merged into the factor matrix exactly as the in-core block loop
merges them.

Because the store's mode-sorted shards hold bit-identical data to the
in-core sorted arrays and the executor uses the same global block
boundaries, the streamed sweep performs the *same floating-point operations
in the same order* as ``update_factor_mode`` on the original tensor — the
updated factors are bitwise-equal, which the equivalence tests assert.  The
difference is the working set: instead of nnz-sized sorted index/value
copies per mode, only the current block (plus the factor matrices, core and
per-row ``(B, c)`` stacks) is resident.

:meth:`ShardedSweepExecutor.fit` runs the full P-Tucker loop (Algorithm 2)
against the store — per-mode streamed updates, a streamed residual pass for
the convergence metrics, and the final orthogonalisation — without ever
materialising the tensor, so |Omega| is bounded by disk, not RAM.

One scoping note on the bitwise contract: the *convergence metric* is
accumulated over the store's canonical (mode-0 sorted) entry order.  When
the original tensor's entry order differs and ``tolerance > 0``, the
error's last ulp can differ from the in-core fit's, so the stopping
decision could in principle flip on an exact tie with the threshold; the
factor updates themselves are bitwise-equal regardless, and with
``tolerance=0`` (or a tensor already in canonical order) the entire fit
is bitwise-equal — which is what the equivalence tests pin down.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.config import PTuckerConfig
from ..core.core_tensor import initialize_core, initialize_factors, orthogonalize
from ..core.result import TuckerResult
from ..core.row_update import update_factor_mode
from ..core.trace import ConvergenceTrace, IterationRecord
from ..kernels.backends import BackendSpec
from ..metrics.errors import RECONSTRUCT_BLOCK_SIZE, error_and_loss_stream
from ..metrics.memory import MemoryTracker
from ..metrics.timing import IterationTimer
from ..parallel.scheduler import RowScheduler
from .store import ShardStore


class ShardedSweepExecutor:
    """Runs mode sweeps (and full fits) by streaming a shard store.

    Parameters
    ----------
    store:
        The shard store to stream from (see :class:`~repro.shards.store.ShardStore`).
    backend:
        Kernel execution strategy for each streamed block — any
        ``backend=`` spec accepted by
        :func:`~repro.kernels.backends.resolve_backend`.
    block_size:
        Entries materialised per streamed block.  Matching the in-core
        solver's ``block_size`` makes the sweep bitwise-equal to the
        in-core result; smaller values trade a little dispatch overhead
        for a smaller resident working set.
    """

    def __init__(
        self,
        store: ShardStore,
        backend: BackendSpec = "numpy",
        block_size: int = 200_000,
    ) -> None:
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self.store = store
        self.backend = backend
        self.block_size = int(block_size)

    # ------------------------------------------------------------------
    def update_factor_mode(
        self,
        factors: List[np.ndarray],
        core: np.ndarray,
        mode: int,
        regularization: float,
        memory: Optional[MemoryTracker] = None,
    ) -> np.ndarray:
        """Update ``A^(mode)`` in place from the store's streamed shards."""
        return update_factor_mode(
            None,
            factors,
            core,
            mode,
            regularization,
            block_size=self.block_size,
            memory=memory,
            backend=self.backend,
            source=self.store,
        )

    def sweep(
        self,
        factors: List[np.ndarray],
        core: np.ndarray,
        regularization: float,
        memory: Optional[MemoryTracker] = None,
    ) -> List[np.ndarray]:
        """One full ALS sweep: every mode updated once, in mode order."""
        for mode in range(self.store.order):
            self.update_factor_mode(factors, core, mode, regularization, memory)
        return factors

    def error_and_loss(
        self,
        core: np.ndarray,
        factors: List[np.ndarray],
        regularization: float,
    ) -> tuple:
        """Streamed reconstruction error (Eq. 5) and loss (Eq. 6).

        Residuals are evaluated over the store's canonical entry order (the
        mode-0 sorted sequence) in the same
        :data:`~repro.metrics.errors.RECONSTRUCT_BLOCK_SIZE` chunks the
        in-core metric uses, so on a tensor stored in that order the values
        are bitwise-identical to
        :func:`repro.metrics.errors.error_and_loss`.
        """
        return error_and_loss_stream(
            self.store.iter_mode_blocks(0, RECONSTRUCT_BLOCK_SIZE),
            core,
            factors,
            regularization,
            expected_entries=self.store.nnz,
        )

    # ------------------------------------------------------------------
    def fit(self, config: Optional[PTuckerConfig] = None) -> TuckerResult:
        """Fit P-Tucker (Algorithm 2) against the store, out of core.

        Mirrors :meth:`repro.core.ptucker.PTucker.fit` step for step —
        same seeded initialisation, per-mode row updates, one streamed
        residual pass per iteration, the same convergence rule and the
        final QR orthogonalisation — with every entry access streamed from
        disk.  The executor's ``backend`` and ``block_size`` govern the
        kernels (``config.backend`` / ``config.block_size`` configure the
        in-core path and are not consulted here); every other
        hyper-parameter comes from ``config``.

        Before the first sweep the store's files get a cheap sanity check
        (:meth:`~repro.shards.store.ShardStore.verify_files` — headers and
        sizes only, no data reads), so a truncated or half-written store
        fails up front with a path-naming
        :class:`~repro.exceptions.DataFormatError` instead of hours into
        the fit.  ``config.checkpoint_dir`` / ``resume`` behave exactly as
        in the in-core fit: versioned crash-safe checkpoints, bitwise
        resume (see :mod:`repro.resilience.checkpoint`).
        """
        config = config if config is not None else PTuckerConfig()
        store = self.store
        store.verify_files()
        ranks = config.resolve_ranks(store.order)
        rng = np.random.default_rng(config.seed)

        factors = initialize_factors(store.shape, ranks, rng)
        core = initialize_core(ranks, rng)

        memory = (
            MemoryTracker(budget_bytes=config.memory_budget_bytes)
            if config.track_memory
            else None
        )
        scheduler = RowScheduler(
            n_threads=config.threads, scheduling=config.scheduling
        )
        trace = ConvergenceTrace()
        timer = IterationTimer()

        checkpoints = None
        digest = ""
        start_iteration = 1
        if config.checkpoint_dir:
            from ..resilience.checkpoint import (
                CheckpointManager,
                fit_state_digest,
                resume_state,
            )

            checkpoints = CheckpointManager(
                config.checkpoint_dir,
                every=config.checkpoint_every,
                diff=config.checkpoint_diff,
            )
            digest = fit_state_digest(
                shape=store.shape,
                nnz=store.nnz,
                ranks=ranks,
                regularization=config.regularization,
                seed=config.seed,
                orthogonalize=config.orthogonalize,
                backend=self.backend,
                block_size=self.block_size,
                entries_sha256=store.fingerprint.get("entries_sha256"),
            )
            resumed = resume_state(checkpoints, config.resume, digest)
            if resumed is not None:
                factors = [
                    np.ascontiguousarray(f, dtype=np.float64)
                    for f in resumed.factors
                ]
                core = np.ascontiguousarray(resumed.core, dtype=np.float64)
                trace = resumed.trace
                start_iteration = resumed.iteration + 1

        for iteration in range(start_iteration, config.max_iterations + 1):
            if trace.converged:
                break  # a resumed checkpoint already recorded convergence
            with timer.iteration():
                for mode in range(store.order):
                    self.update_factor_mode(
                        factors, core, mode, config.regularization, memory
                    )
                    scheduler.record_mode(store.mode_segmentation(mode)[2])
                error, loss = self.error_and_loss(
                    core, factors, config.regularization
                )

            trace.add(
                IterationRecord(
                    iteration=iteration,
                    reconstruction_error=error,
                    loss=loss,
                    seconds=timer.seconds[-1],
                    core_nnz=int(np.count_nonzero(core)),
                )
            )
            if (
                iteration >= config.min_iterations
                and trace.relative_change() < config.tolerance
            ):
                trace.converged = True
                trace.stop_reason = (
                    f"relative error change below tolerance {config.tolerance}"
                )
            elif iteration == config.max_iterations:
                trace.stop_reason = (
                    f"reached max_iterations={config.max_iterations}"
                )
            if checkpoints is not None and checkpoints.due(
                iteration,
                final=trace.converged or iteration == config.max_iterations,
            ):
                checkpoints.save(iteration, factors, core, trace, digest)
            if trace.converged:
                break

        if config.orthogonalize:
            factors, core = orthogonalize(factors, core)

        result = TuckerResult(
            core=core,
            factors=list(factors),
            trace=trace,
            memory=memory,
            algorithm="P-Tucker",
        )
        result.scheduler = scheduler  # type: ignore[attr-defined]
        return result
