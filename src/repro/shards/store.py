"""The on-disk shard store: per-mode, mode-sorted, memory-mapped COO blocks.

A :class:`ShardStore` is the out-of-core representation of a
:class:`~repro.tensor.coo.SparseTensor`.  For every mode ``n`` the observed
entries are stably sorted by their mode-``n`` index — exactly the ordering
:func:`~repro.core.row_update.build_mode_context` produces in RAM — and the
sorted sequence is cut into consecutive *shards* of at most ``shard_nnz``
entries.  **Format v2** stores each shard *columnar*: one ``.npy`` file per
index column, each in the narrowest unsigned dtype its mode dimension
admits (``uint8`` / ``uint16`` / ``uint32``, ``int64`` beyond 2**32 — see
:func:`repro.columns.index_dtype_for_dim`), plus one float64 value file.
At typical dimensions that is 3-8x fewer index bytes than the v1 int64
matrix, on disk and on the wire alike.  Reads go through
``numpy.load(..., mmap_mode="r")`` and surface as zero-copy narrow
:class:`~repro.columns.IndexColumns` blocks, which every kernel backend
consumes without widening; the nnz-sized sorted index/value copies that a
:class:`~repro.core.row_update.ModeContext` keeps in RAM never exist.

Directory layout::

    <dir>/manifest.json           # see below
    <dir>/mode0/row_ids.npy       # distinct mode-0 indices with entries
    <dir>/mode0/row_starts.npy    # global start offset of each row segment
    <dir>/mode0/row_counts.npy    # |Omega_in| per listed row
    <dir>/mode0/shard0000.col0.npy     # mode-0 indices of the shard's entries
    <dir>/mode0/shard0000.col1.npy     # ... one narrow file per index column
    <dir>/mode0/shard0000.values.npy
    ...                           # one subdirectory per mode

The manifest records the per-column index dtypes (identical across modes —
column ``k`` always holds mode-``k`` indices), the ``index_dtype`` policy
that chose them (``"auto"`` narrow / ``"wide"`` int64), and, per shard, the
global entry range ``[start, stop)`` it covers in the mode-sorted order,
the row range ``[first_row, last_row]`` its entries touch, and the segment
bookkeeping (``segment_offset`` — the position in ``row_ids`` of the first
row present in the shard, ``n_segments`` — how many distinct rows appear,
and ``continues_segment`` — whether the first row's segment started in the
previous shard).  Shard boundaries are *not* snapped to segment
boundaries: a row whose segment is longer than ``shard_nnz`` simply spans
several shards, and the streaming executor accumulates its partial normal
equations across them, exactly as the in-core block loop does for rows
that straddle a ``block_size`` chunk.

Because every shard holds exactly the entries ``sorted[start:stop]`` of the
in-core mode ordering (ties preserved by the stable sort), any consumer
that walks the shards with the same block boundaries as the in-core path
performs bit-for-bit the same floating-point operations; that is what makes
:class:`~repro.shards.executor.ShardedSweepExecutor` bitwise-equal to the
in-core sweep.  Narrowing the index dtype never touches a float64, so
``index_dtype="auto"`` and ``"wide"`` stores produce bitwise-identical
sweeps too.

Version-1 directories (a single int64 ``shardNNNN.indices.npy`` matrix per
shard) are no longer opened for compute; :meth:`ShardStore.open` raises a
:class:`~repro.exceptions.DataFormatError` naming the migration recipe,
and :mod:`repro.shards.legacy` reads them for ``shards-migrate`` /
``ingest``.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..columns import (
    IndexColumns,
    check_index_dtype_policy,
    index_dtypes_for_shape,
)
from ..exceptions import DataFormatError, ShapeError
from ..resilience.atomic import (
    atomic_save_array,
    atomic_write_json,
    fsync_directory,
)
from ..tensor.coo import SparseTensor

#: Manifest file name inside a shard directory.
MANIFEST_NAME = "manifest.json"

#: Compaction commit marker (written by ``repro.updates.compact``); its
#: name lives here so ``open`` can check for it without importing the
#: updates package on every open.
COMPACT_MARKER_NAME = "compact.commit.json"

#: ``format`` field value identifying a shard-store manifest.
FORMAT_NAME = "repro-shard-store"

#: Current manifest schema version (2 = narrow columnar index files).
FORMAT_VERSION = 2

#: The retired schema version (int64 index matrices); readable only through
#: :mod:`repro.shards.legacy` and the ``shards-migrate`` CLI.
LEGACY_FORMAT_VERSION = 1

#: Default shard capacity in entries (~32 MB of index+value data at order 3).
DEFAULT_SHARD_NNZ = 1_000_000

#: Shard memmaps kept open per store (LRU).  Sequential block reads hit the
#: same one or two shards repeatedly, so a tiny cache removes the repeated
#: file-open/header-parse per block while keeping the number of
#: simultaneously mapped shards — and therefore resident file pages —
#: bounded regardless of tensor size.
MMAP_CACHE_SHARDS = 4


def _tensor_digest(tensor: SparseTensor) -> str:
    """SHA-256 over the entry bytes (order-sensitive, collision-proof).

    Always digests the canonical int64/float64 representation, so the
    fingerprint is independent of the on-disk index dtypes: a narrow and a
    wide store of the same tensor carry the same digest.
    """
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(tensor.indices, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(tensor.values, dtype=np.float64).tobytes())
    return digest.hexdigest()


def migration_hint(directory: str) -> str:
    """The one-line v1 -> v2 recipe quoted in version-mismatch errors."""
    return (
        f"rewrite it with `python -m repro shards-migrate {directory} "
        f"--out <new-dir>` (bounded memory), or re-shard the data with "
        f"`python -m repro ingest {directory} --out <new-dir>`"
    )


@dataclass(frozen=True)
class ShardInfo:
    """Metadata of one on-disk shard of one mode's sorted entry sequence.

    Attributes
    ----------
    column_paths:
        Paths of the per-column index ``.npy`` files (one per mode, in
        mode order), relative to the store directory.
    values_path:
        Path of the float64 value ``.npy`` block.
    start / stop:
        Global entry range ``[start, stop)`` the shard covers inside the
        mode-sorted order.
    first_row / last_row:
        Smallest and largest mode index appearing in the shard.
    segment_offset:
        Position in the mode's ``row_ids`` of the first row present here.
    n_segments:
        Number of distinct rows with at least one entry in this shard.
    continues_segment:
        True when the first row's segment began in the previous shard (the
        shard boundary split a row's entries).
    """

    column_paths: Tuple[str, ...]
    values_path: str
    start: int
    stop: int
    first_row: int
    last_row: int
    segment_offset: int
    n_segments: int
    continues_segment: bool

    @property
    def nnz(self) -> int:
        """Entries stored in this shard."""
        return self.stop - self.start

    def to_json(self) -> Dict[str, object]:
        """The manifest entry for this shard."""
        return {
            "columns": list(self.column_paths),
            "values": self.values_path,
            "start": self.start,
            "stop": self.stop,
            "rows": [self.first_row, self.last_row],
            "segment_offset": self.segment_offset,
            "n_segments": self.n_segments,
            "continues_segment": self.continues_segment,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "ShardInfo":
        """Parse one manifest shard entry."""
        try:
            rows = payload["rows"]
            return cls(
                column_paths=tuple(str(p) for p in payload["columns"]),
                values_path=str(payload["values"]),
                start=int(payload["start"]),
                stop=int(payload["stop"]),
                first_row=int(rows[0]),
                last_row=int(rows[1]),
                segment_offset=int(payload["segment_offset"]),
                n_segments=int(payload["n_segments"]),
                continues_segment=bool(payload["continues_segment"]),
            )
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            raise DataFormatError(f"malformed shard entry in manifest: {exc}") from exc


def _mode_dir(mode: int) -> str:
    return f"mode{mode}"


def _shard_stem(mode: int, number: int) -> str:
    return os.path.join(_mode_dir(mode), f"shard{number:04d}")


def _mode_shards_json(
    mode: int,
    nnz: int,
    shard_nnz: int,
    order: int,
    row_ids: np.ndarray,
    row_starts: np.ndarray,
) -> List[Dict[str, object]]:
    """Manifest entries of one mode's shards, from its row segmentation.

    Shard boundaries are fixed by ``nnz`` and ``shard_nnz`` alone; every
    row-range and segment field is derived from ``row_ids``/``row_starts``,
    so the in-RAM build and the external-memory merge produce identical
    manifests by construction.
    """
    shards: List[Dict[str, object]] = []
    for number, start in enumerate(range(0, nnz, shard_nnz)):
        stop = min(start + shard_nnz, nnz)
        stem = _shard_stem(mode, number)
        # Rows overlapping [start, stop): the row owning entry ``start`` is
        # the last one starting at or before it.
        seg_lo = int(np.searchsorted(row_starts, start, side="right")) - 1
        seg_hi = int(np.searchsorted(row_starts, stop, side="left"))
        last_seg = int(np.searchsorted(row_starts, stop - 1, side="right")) - 1
        shards.append(
            ShardInfo(
                column_paths=tuple(
                    f"{stem}.col{k}.npy" for k in range(order)
                ),
                values_path=stem + ".values.npy",
                start=start,
                stop=stop,
                first_row=int(row_ids[seg_lo]),
                last_row=int(row_ids[last_seg]),
                segment_offset=seg_lo,
                n_segments=seg_hi - seg_lo,
                continues_segment=bool(row_starts[seg_lo] < start),
            ).to_json()
        )
    return shards


def _manifest_payload(
    shape: Sequence[int],
    nnz: int,
    shard_nnz: int,
    index_dtype: str,
    fingerprint: Dict[str, object],
    modes_json: List[Dict[str, object]],
) -> Dict[str, object]:
    """The manifest dictionary shared by both build paths."""
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "shape": [int(s) for s in shape],
        "order": len(shape),
        "nnz": int(nnz),
        "shard_nnz": int(shard_nnz),
        "dtypes": {
            "index_columns": [
                str(d) for d in index_dtypes_for_shape(shape, index_dtype)
            ],
            "values": "float64",
            "index_dtype": index_dtype,
        },
        "fingerprint": fingerprint,
        "modes": modes_json,
    }


def _write_manifest(directory: str, manifest: Dict[str, object]) -> None:
    """Serialise a manifest into ``directory`` (sorted keys, trailing newline).

    Written atomically (tmp + fsync + rename) and *last* during a build —
    the manifest is the commit point: a directory without one is not a
    store, so a crash at any earlier instant leaves nothing that
    :meth:`ShardStore.open` would accept.
    """
    atomic_write_json(os.path.join(directory, MANIFEST_NAME), manifest)


def _retire_manifest(directory: str) -> None:
    """Remove a stale manifest before a rebuild touches any data file.

    Rebuilding over an existing store rewrites the shard files in place;
    if the old manifest survived until the crash, ``open`` would accept a
    directory whose data no longer matches it.  Deleting the manifest
    first makes every partially rebuilt state unopenable instead of
    silently wrong — the commit-point discipline in reverse.
    """
    path = os.path.join(directory, MANIFEST_NAME)
    if os.path.exists(path):
        os.remove(path)
        fsync_directory(directory)


def _npy_file_info(path: str) -> Tuple[Tuple[int, ...], np.dtype, int]:
    """Parse one ``.npy`` header without reading data.

    Returns ``(shape, dtype, data_offset)``; raises ``OSError`` /
    ``ValueError`` on a missing file or a malformed header.
    """
    with open(path, "rb") as handle:
        version = np.lib.format.read_magic(handle)
        if version == (1, 0):
            shape, _, dtype = np.lib.format.read_array_header_1_0(handle)
        elif version == (2, 0):
            shape, _, dtype = np.lib.format.read_array_header_2_0(handle)
        else:
            raise ValueError(f"unsupported .npy format version {version}")
        return tuple(int(s) for s in shape), np.dtype(dtype), handle.tell()


class ShardStore:
    """Mode-sorted, memory-mapped columnar COO shards of one sparse tensor.

    Build one with :meth:`build` (from an in-RAM tensor) and reopen it later
    with :meth:`open`; :meth:`for_tensor` combines both, reusing an existing
    directory when its manifest matches the tensor.  The store implements
    the *entry source* protocol the row update streams from
    (:attr:`nnz` / :attr:`shape` / :attr:`order`,
    :meth:`mode_segmentation`, :meth:`read_mode_block`,
    :meth:`gather_mode_entries`), so it can be passed directly as
    ``update_factor_mode(source=...)`` or wrapped in a
    :class:`~repro.shards.executor.ShardedSweepExecutor`.  Blocks come back
    as narrow :class:`~repro.columns.IndexColumns`, which every kernel
    backend consumes without widening.
    """

    def __init__(self, directory: str, manifest: Dict[str, object]) -> None:
        self.directory = os.fspath(directory)
        self._parse_manifest(manifest)
        self._segmentation: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._shard_starts: Dict[int, np.ndarray] = {}
        self._mmap_cache: "OrderedDict[str, Tuple[Tuple[np.ndarray, ...], np.ndarray]]" = (
            OrderedDict()
        )

    def __getstate__(self) -> Dict[str, object]:
        """Pickle without the mmap cache (workers re-map their own shards)."""
        state = dict(self.__dict__)
        state["_mmap_cache"] = OrderedDict()
        return state

    # ------------------------------------------------------------------
    # Manifest handling
    # ------------------------------------------------------------------
    def _parse_manifest(self, manifest: Dict[str, object]) -> None:
        if manifest.get("format") != FORMAT_NAME:
            raise DataFormatError(
                f"{self.directory}: not a shard store "
                f"(format={manifest.get('format')!r})"
            )
        version = int(manifest.get("version", -1))
        if version == LEGACY_FORMAT_VERSION:
            raise DataFormatError(
                f"{self.directory}: this is a version-{LEGACY_FORMAT_VERSION} "
                f"shard store (int64 index matrices); this build reads "
                f"version {FORMAT_VERSION} (narrow columnar indices) — "
                + migration_hint(self.directory)
            )
        if version != FORMAT_VERSION:
            raise DataFormatError(
                f"{self.directory}: unsupported shard-store version {version} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        try:
            self.shape: Tuple[int, ...] = tuple(int(s) for s in manifest["shape"])
            self.nnz: int = int(manifest["nnz"])
            self.shard_nnz: int = int(manifest["shard_nnz"])
            dtypes = manifest["dtypes"]
            self.index_dtype: str = check_index_dtype_policy(
                str(dtypes["index_dtype"])
            )
            self.index_dtypes: Tuple[np.dtype, ...] = tuple(
                np.dtype(str(name)) for name in dtypes["index_columns"]
            )
            modes = manifest["modes"]
        except (KeyError, TypeError, ValueError) as exc:
            raise DataFormatError(
                f"{self.directory}: malformed manifest: {exc}"
            ) from exc
        if len(self.index_dtypes) != len(self.shape):
            raise DataFormatError(
                f"{self.directory}: manifest lists {len(self.index_dtypes)} "
                f"index dtypes for an order-{len(self.shape)} shape"
            )
        expected = index_dtypes_for_shape(self.shape, self.index_dtype)
        if self.index_dtypes != expected:
            raise DataFormatError(
                f"{self.directory}: manifest index dtypes "
                f"{[str(d) for d in self.index_dtypes]} do not match the "
                f"{self.index_dtype!r} policy for shape {self.shape}"
            )
        self.fingerprint: Dict[str, float] = dict(manifest.get("fingerprint", {}))
        if len(modes) != len(self.shape):
            raise DataFormatError(
                f"{self.directory}: manifest lists {len(modes)} modes for an "
                f"order-{len(self.shape)} shape"
            )
        self._modes: List[Dict[str, object]] = list(modes)
        self._shards: Dict[int, List[ShardInfo]] = {}
        for entry in self._modes:
            mode = int(entry["mode"])
            shards = [ShardInfo.from_json(s) for s in entry["shards"]]
            offset = 0
            for shard in shards:
                if shard.start != offset:
                    raise DataFormatError(
                        f"{self.directory}: mode {mode} shards are not "
                        f"contiguous at entry {offset}"
                    )
                if len(shard.column_paths) != len(self.shape):
                    raise DataFormatError(
                        f"{self.directory}: mode {mode} shard at entry "
                        f"{offset} lists {len(shard.column_paths)} index "
                        f"columns for an order-{len(self.shape)} shape"
                    )
                offset = shard.stop
            if offset != self.nnz:
                raise DataFormatError(
                    f"{self.directory}: mode {mode} shards cover {offset} "
                    f"entries, manifest says nnz={self.nnz}"
                )
            self._shards[mode] = shards

    @property
    def order(self) -> int:
        """Number of tensor modes N."""
        return len(self.shape)

    @property
    def index_bytes_per_entry(self) -> int:
        """Bytes of index data stored per entry (one set of columns)."""
        return sum(int(d.itemsize) for d in self.index_dtypes)

    def manifest_path(self) -> str:
        """Absolute path of this store's manifest file."""
        return os.path.join(self.directory, MANIFEST_NAME)

    def mode_shards(self, mode: int) -> List[ShardInfo]:
        """The shard metadata of one mode, in entry order."""
        if mode not in self._shards:
            raise ShapeError(f"mode {mode} out of range for order {self.order}")
        return list(self._shards[mode])

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        n_shards = sum(len(s) for s in self._shards.values())
        return (
            f"ShardStore(dir={self.directory!r}, shape={self.shape}, "
            f"nnz={self.nnz}, shards={n_shards}, "
            f"index_dtype={self.index_dtype!r})"
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        tensor: SparseTensor,
        directory: str,
        shard_nnz: int = DEFAULT_SHARD_NNZ,
        index_dtype: str = "auto",
    ) -> "ShardStore":
        """Convert ``tensor`` into a shard store at ``directory``.

        For every mode the entries are stably sorted by that mode's index
        (the :class:`~repro.core.row_update.ModeContext` ordering, ties kept
        in the tensor's entry order) and written as consecutive shards of at
        most ``shard_nnz`` entries, one narrow column file per mode plus
        the float64 values (``index_dtype="wide"`` keeps int64 columns).
        An existing store in ``directory`` is replaced; unrelated files in
        the directory are left alone.
        """
        if shard_nnz < 1:
            raise ShapeError("shard_nnz must be at least 1")
        check_index_dtype_policy(index_dtype)
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        _retire_manifest(directory)
        column_dtypes = index_dtypes_for_shape(tensor.shape, index_dtype)

        modes_json: List[Dict[str, object]] = []
        for mode in range(tensor.order):
            mode_dir = os.path.join(directory, _mode_dir(mode))
            if os.path.isdir(mode_dir):
                shutil.rmtree(mode_dir)
            os.makedirs(mode_dir)

            perm = tensor.sort_by_mode(mode)
            # Narrow columnar copies of the sorted entries: the int64
            # matrix gather never happens, so even the build's transient
            # peak shrinks with the dtypes.
            sorted_columns = [
                np.ascontiguousarray(tensor.indices[perm, k], dtype=dtype)
                for k, dtype in enumerate(column_dtypes)
            ]
            sorted_values = np.ascontiguousarray(
                tensor.values[perm], dtype=np.float64
            )
            mode_column = sorted_columns[mode]
            row_ids, row_starts, row_counts = np.unique(
                mode_column, return_index=True, return_counts=True
            )
            row_ids = row_ids.astype(np.int64)
            row_starts = row_starts.astype(np.int64)
            row_counts = row_counts.astype(np.int64)
            atomic_save_array(os.path.join(mode_dir, "row_ids.npy"), row_ids)
            atomic_save_array(os.path.join(mode_dir, "row_starts.npy"), row_starts)
            atomic_save_array(os.path.join(mode_dir, "row_counts.npy"), row_counts)

            shards_json = _mode_shards_json(
                mode, tensor.nnz, shard_nnz, tensor.order, row_ids, row_starts
            )
            for shard_json in shards_json:
                start = int(shard_json["start"])
                stop = int(shard_json["stop"])
                for k, column_path in enumerate(shard_json["columns"]):
                    atomic_save_array(
                        os.path.join(directory, str(column_path)),
                        sorted_columns[k][start:stop],
                    )
                atomic_save_array(
                    os.path.join(directory, str(shard_json["values"])),
                    sorted_values[start:stop],
                )
            modes_json.append({"mode": mode, "shards": shards_json})
            # Release this mode's cached sort permutation (and the sorted
            # copies) before the next mode doubles the build's peak memory.
            del perm, sorted_columns, sorted_values, mode_column
            tensor.clear_caches()

        manifest = _manifest_payload(
            tensor.shape,
            tensor.nnz,
            shard_nnz,
            index_dtype,
            {
                "values_sum": float(np.sum(tensor.values)) if tensor.nnz else 0.0,
                "indices_sum": int(tensor.indices.sum()) if tensor.nnz else 0,
                "entries_sha256": _tensor_digest(tensor),
            },
            modes_json,
        )
        _write_manifest(directory, manifest)
        return cls(directory, manifest)

    @classmethod
    def build_streaming(
        cls,
        source,
        directory: str,
        shard_nnz: int = DEFAULT_SHARD_NNZ,
        chunk_nnz: Optional[int] = None,
        shape: Optional[Sequence[int]] = None,
        index_dtype: str = "auto",
    ) -> "ShardStore":
        """Build a shard store from a chunked entry source, out of core.

        ``source`` is any reader implementing the entry-chunk protocol of
        :mod:`repro.tensor.io` (``iter_entry_chunks(chunk_nnz)`` plus an
        optional ``shape`` attribute): a text file, ``.npz`` archive,
        ``.rcoo`` container, in-RAM tensor or another store.  Entries are
        spilled to per-mode sorted runs of at most ``chunk_nnz`` entries —
        already in narrow column dtypes, so spill bytes shrink with the
        data — and k-way merged into the shard layout on disk (see
        :mod:`repro.shards.merge`), so peak memory is bounded by the chunk
        size — never by nnz — and the resulting directory is
        **bitwise-identical** to :meth:`build` on the same entries: same
        shard files, same manifest, same fingerprint.  ``shape`` overrides
        the source's own shape; when neither is given it is inferred as
        max index + 1 per mode, exactly as
        :func:`repro.tensor.io.load_text` infers it.
        """
        from .merge import streaming_build

        manifest = streaming_build(
            source,
            os.fspath(directory),
            shard_nnz=shard_nnz,
            chunk_nnz=chunk_nnz,
            shape=shape,
            index_dtype=index_dtype,
        )
        return cls(os.fspath(directory), manifest)

    @classmethod
    def open(cls, directory: str) -> "ShardStore":
        """Open an existing shard store (raises when no manifest is found).

        A version-1 directory raises a :class:`DataFormatError` whose
        message names both versions and the one-line re-shard recipe
        (``shards-migrate`` / ``ingest ... --out``).

        A directory carrying a committed-but-unfinished compaction marker
        (``compact.commit.json`` — see :mod:`repro.updates.compact`) is
        rolled forward first, so a crash mid-compaction is invisible to
        every reader: the marker's presence *is* the commit, and opening
        finishes the file moves idempotently.
        """
        directory = os.fspath(directory)
        if os.path.exists(os.path.join(directory, COMPACT_MARKER_NAME)):
            from ..updates.compact import complete_compaction

            complete_compaction(directory)
        path = os.path.join(directory, MANIFEST_NAME)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except FileNotFoundError:
            raise DataFormatError(
                f"{directory}: no {MANIFEST_NAME}; not a shard store"
            ) from None
        except ValueError as exc:
            raise DataFormatError(f"{path}: invalid JSON: {exc}") from exc
        return cls(directory, manifest)

    @classmethod
    def for_tensor(
        cls,
        tensor: SparseTensor,
        directory: str,
        shard_nnz: int = DEFAULT_SHARD_NNZ,
        index_dtype: str = "auto",
    ) -> "ShardStore":
        """Open ``directory`` if it already shards ``tensor``; build otherwise.

        A store is reused when its shape, nnz and entry digest match the
        tensor (see :meth:`matches`) — repeated CLI runs over the same
        dataset then skip the rewrite.  Any mismatch (including a
        different ``shard_nnz`` or ``index_dtype`` policy) triggers a
        rebuild; a version-1 directory is rebuilt in place.
        """
        check_index_dtype_policy(index_dtype)
        try:
            store = cls.open(directory)
        except DataFormatError:
            return cls.build(
                tensor, directory, shard_nnz=shard_nnz, index_dtype=index_dtype
            )
        if (
            store.matches(tensor)
            and store.shard_nnz == int(shard_nnz)
            and store.index_dtype == index_dtype
        ):
            return store
        return cls.build(
            tensor, directory, shard_nnz=shard_nnz, index_dtype=index_dtype
        )

    def matches(self, tensor: SparseTensor) -> bool:
        """True when this store was built from exactly ``tensor``.

        Compares shape, nnz and the manifest's SHA-256 over the entry
        bytes, so sum-preserving edits (swapped values, redistributed
        weight) can never alias a stale store.  The digest is
        order-sensitive: re-parsing the same file matches, a reordered
        tensor rebuilds.
        """
        if self.shape != tuple(tensor.shape) or self.nnz != tensor.nnz:
            return False
        recorded = self.fingerprint.get("entries_sha256")
        if not recorded:
            return False
        return recorded == _tensor_digest(tensor)

    # ------------------------------------------------------------------
    # Entry-source protocol (what the row update streams from)
    # ------------------------------------------------------------------
    def mode_segmentation(
        self, mode: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(row_ids, row_starts, row_counts)`` of one mode's sorted order.

        These are the same arrays a :class:`~repro.core.row_update.ModeContext`
        holds; their size is the number of distinct mode indices (at most
        ``shape[mode]``), so they are loaded into RAM eagerly and cached.
        """
        if mode not in self._segmentation:
            if mode not in self._shards:
                raise ShapeError(
                    f"mode {mode} out of range for order {self.order}"
                )
            mode_dir = os.path.join(self.directory, _mode_dir(mode))
            try:
                loaded = tuple(
                    np.load(os.path.join(mode_dir, name))
                    for name in ("row_ids.npy", "row_starts.npy", "row_counts.npy")
                )
            except (OSError, ValueError) as exc:
                raise DataFormatError(
                    f"{self.directory}: cannot read mode-{mode} row "
                    f"segmentation: {exc}"
                ) from exc
            self._segmentation[mode] = loaded
        return self._segmentation[mode]

    def _starts_of(self, mode: int) -> np.ndarray:
        """Global start offsets of one mode's shards (for searchsorted)."""
        if mode not in self._shard_starts:
            self._shard_starts[mode] = np.asarray(
                [s.start for s in self._shards[mode]], dtype=np.int64
            )
        return self._shard_starts[mode]

    def _mmap_shard(
        self, shard: ShardInfo
    ) -> Tuple[Tuple[np.ndarray, ...], np.ndarray]:
        """Memory-map one shard's column and value files (read-only).

        The most recently touched :data:`MMAP_CACHE_SHARDS` maps are kept
        open, so the block loop's repeated visits to the same shard skip
        the file opens and ``.npy`` header parses; older maps are dropped,
        keeping the simultaneously resident file pages bounded.
        """
        cached = self._mmap_cache.get(shard.values_path)
        if cached is not None:
            self._mmap_cache.move_to_end(shard.values_path)
            return cached
        try:
            columns = tuple(
                np.load(os.path.join(self.directory, path), mmap_mode="r")
                for path in shard.column_paths
            )
            values = np.load(
                os.path.join(self.directory, shard.values_path), mmap_mode="r"
            )
        except (OSError, ValueError) as exc:
            raise DataFormatError(
                f"{self.directory}: cannot map shard "
                f"{shard.values_path!r}: {exc}"
            ) from exc
        self._mmap_cache[shard.values_path] = (columns, values)
        while len(self._mmap_cache) > MMAP_CACHE_SHARDS:
            self._mmap_cache.popitem(last=False)
        return columns, values

    def _empty_block(self) -> Tuple[IndexColumns, np.ndarray]:
        return (
            IndexColumns(
                [np.empty(0, dtype=d) for d in self.index_dtypes]
            ),
            np.empty(0, dtype=np.float64),
        )

    def read_mode_block(
        self, mode: int, start: int, stop: int
    ) -> Tuple[IndexColumns, np.ndarray]:
        """Entries ``[start, stop)`` of the mode-sorted order, as RAM copies.

        The index part comes back as a narrow
        :class:`~repro.columns.IndexColumns` — the copies stay in the
        on-disk dtypes, so a block costs ``index_bytes_per_entry`` per
        entry instead of ``8 * order``.  The requested range may span
        shard boundaries; only the touched shards are mapped (through the
        small LRU of :meth:`_mmap_shard`) and only the requested rows are
        copied, so resident memory is bounded by the block being read plus
        at most :data:`MMAP_CACHE_SHARDS` mapped shards — not by nnz.
        """
        if mode not in self._shards:
            raise ShapeError(f"mode {mode} out of range for order {self.order}")
        start = max(0, int(start))
        stop = min(int(stop), self.nnz)
        length = max(0, stop - start)
        shards = self._shards[mode]
        if length == 0 or not shards:
            return self._empty_block()
        starts = self._starts_of(mode)
        first = int(np.searchsorted(starts, start, side="right")) - 1
        columns_out = [
            np.empty(length, dtype=d) for d in self.index_dtypes
        ]
        values_out = np.empty(length, dtype=np.float64)
        filled = 0
        for shard in shards[first:]:
            if shard.start >= stop:
                break
            lo = max(start, shard.start) - shard.start
            hi = min(stop, shard.stop) - shard.start
            columns_mm, values_mm = self._mmap_shard(shard)
            out = slice(filled, filled + hi - lo)
            for k, column_mm in enumerate(columns_mm):
                columns_out[k][out] = column_mm[lo:hi]
            values_out[out] = values_mm[lo:hi]
            filled += hi - lo
        return IndexColumns(columns_out), values_out

    def gather_mode_entries(
        self, mode: int, positions: np.ndarray
    ) -> Tuple[IndexColumns, np.ndarray]:
        """Arbitrary entries of the mode-sorted order, by global position.

        ``positions`` need not be sorted or contiguous (the process-pool
        executor gathers each worker's scattered row segments this way).
        Positions are grouped per shard so each touched shard is mapped
        once.
        """
        positions = np.asarray(positions, dtype=np.int64)
        columns_out = [
            np.empty(positions.shape[0], dtype=d) for d in self.index_dtypes
        ]
        values_out = np.empty(positions.shape[0], dtype=np.float64)
        if positions.shape[0] == 0:
            return IndexColumns(columns_out), values_out
        if positions.min() < 0 or positions.max() >= self.nnz:
            raise ShapeError("entry positions out of range for this store")
        starts = self._starts_of(mode)
        owner = np.searchsorted(starts, positions, side="right") - 1
        for shard_number in np.unique(owner):
            shard = self._shards[mode][int(shard_number)]
            mask = owner == shard_number
            local = positions[mask] - shard.start
            columns_mm, values_mm = self._mmap_shard(shard)
            for k, column_mm in enumerate(columns_mm):
                columns_out[k][mask] = column_mm[local]
            values_out[mask] = values_mm[local]
        return IndexColumns(columns_out), values_out

    def iter_mode_blocks(
        self, mode: int, block_size: int
    ) -> Iterator[Tuple[IndexColumns, np.ndarray]]:
        """Stream one mode's sorted entries in ``block_size`` chunks."""
        if block_size < 1:
            raise ShapeError("block_size must be positive")
        for start in range(0, self.nnz, block_size):
            yield self.read_mode_block(mode, start, min(start + block_size, self.nnz))

    # ------------------------------------------------------------------
    # Import / export
    # ------------------------------------------------------------------
    def to_tensor(self) -> SparseTensor:
        """Materialise the store as an in-RAM sparse tensor.

        Entries come back in the store's canonical order — the mode-0 sorted
        sequence.  The set of entries equals the tensor the store was built
        from; only the ordering is normalised.
        """
        block, values = self.read_mode_block(0, 0, self.nnz)
        return SparseTensor(block.to_matrix(), values, self.shape)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def verify_files(self) -> None:
        """Cheap integrity check: every file exists with its declared header.

        Parses each ``.npy`` header (magic, shape, dtype) and compares the
        file's size against ``header + shape × itemsize`` — no data is
        read, so the check is O(number of files), not O(nnz), cheap enough
        to run before every out-of-core sweep.  Catches missing,
        truncated, padded and header-corrupt files with a
        :class:`~repro.exceptions.DataFormatError` naming the path;
        content-level damage to the index columns (bit flips breaking
        sort order or row ranges) needs the full :meth:`validate`.  Flips
        inside the *values* data region are beyond both — only the
        checksummed artifacts (checkpoints) pin every byte.
        """

        def check(relative: str, shape: Tuple[int, ...], dtype: np.dtype) -> None:
            path = os.path.join(self.directory, relative)
            try:
                found_shape, found_dtype, offset = _npy_file_info(path)
            except FileNotFoundError:
                raise DataFormatError(
                    f"{path}: shard-store file is missing"
                ) from None
            except (OSError, ValueError) as exc:
                raise DataFormatError(
                    f"{path}: unreadable .npy header ({exc})"
                ) from None
            if found_shape != tuple(shape):
                raise DataFormatError(
                    f"{path}: header shape {found_shape} does not match "
                    f"manifest {tuple(shape)}"
                )
            if found_dtype != np.dtype(dtype):
                raise DataFormatError(
                    f"{path}: header dtype {found_dtype} does not match "
                    f"manifest {np.dtype(dtype)}"
                )
            expected = offset + int(
                np.prod(found_shape, dtype=np.int64) * found_dtype.itemsize
            )
            actual = os.path.getsize(path)
            if actual != expected:
                raise DataFormatError(
                    f"{path}: file is {actual} bytes, header implies "
                    f"{expected} — truncated or padded"
                )

        for mode in range(self.order):
            mode_dir = _mode_dir(mode)
            lengths = {}
            for name in ("row_ids.npy", "row_starts.npy", "row_counts.npy"):
                relative = os.path.join(mode_dir, name)
                path = os.path.join(self.directory, relative)
                try:
                    shape, dtype, _ = _npy_file_info(path)
                except FileNotFoundError:
                    raise DataFormatError(
                        f"{path}: shard-store file is missing"
                    ) from None
                except (OSError, ValueError) as exc:
                    raise DataFormatError(
                        f"{path}: unreadable .npy header ({exc})"
                    ) from None
                if len(shape) != 1 or dtype != np.dtype(np.int64):
                    raise DataFormatError(
                        f"{path}: expected a 1-D int64 segmentation array, "
                        f"found shape {shape} dtype {dtype}"
                    )
                check(relative, shape, np.int64)
                lengths[name] = shape[0]
            if len(set(lengths.values())) != 1:
                raise DataFormatError(
                    f"{self.directory}: mode-{mode} segmentation arrays "
                    f"disagree in length ({lengths})"
                )
            for shard in self._shards[mode]:
                for k, column_path in enumerate(shard.column_paths):
                    check(column_path, (shard.nnz,), self.index_dtypes[k])
                check(shard.values_path, (shard.nnz,), np.float64)

    def validate(self) -> None:
        """Check the on-disk data against the manifest (beyond `open`'s checks).

        Verifies, per mode: every shard column/value file exists with the
        declared shape and dtype, shard entries really are sorted by the
        mode index with row ranges matching the manifest, and the row
        segmentation is consistent with the shard contents.  Raises
        :class:`~repro.exceptions.DataFormatError` on the first violation.
        """
        for mode in range(self.order):
            row_ids, row_starts, row_counts = self.mode_segmentation(mode)
            if row_counts.sum() != self.nnz:
                raise DataFormatError(
                    f"{self.directory}: mode {mode} row counts sum to "
                    f"{int(row_counts.sum())}, expected nnz={self.nnz}"
                )
            previous_last = None
            for shard in self._shards[mode]:
                columns_mm, values_mm = self._mmap_shard(shard)
                for k, column_mm in enumerate(columns_mm):
                    if column_mm.shape != (shard.nnz,):
                        raise DataFormatError(
                            f"{self.directory}: {shard.column_paths[k]} has "
                            f"shape {column_mm.shape}, manifest says "
                            f"({shard.nnz},)"
                        )
                    if column_mm.dtype != self.index_dtypes[k]:
                        raise DataFormatError(
                            f"{self.directory}: {shard.column_paths[k]} has "
                            f"dtype {column_mm.dtype}, manifest says "
                            f"{self.index_dtypes[k]}"
                        )
                if values_mm.shape != (shard.nnz,):
                    raise DataFormatError(
                        f"{self.directory}: {shard.values_path} has shape "
                        f"{values_mm.shape}, manifest says ({shard.nnz},)"
                    )
                column = np.asarray(columns_mm[mode])
                if column.size and np.any(np.diff(column.astype(np.int64)) < 0):
                    raise DataFormatError(
                        f"{self.directory}: {shard.column_paths[mode]} is not "
                        f"sorted by mode {mode}"
                    )
                if column.size and (
                    int(column[0]) != shard.first_row
                    or int(column[-1]) != shard.last_row
                ):
                    raise DataFormatError(
                        f"{self.directory}: {shard.column_paths[mode]} row "
                        f"range [{int(column[0])}, {int(column[-1])}] does "
                        f"not match manifest "
                        f"[{shard.first_row}, {shard.last_row}]"
                    )
                if previous_last is not None and column.size and (
                    int(column[0]) < previous_last
                ):
                    raise DataFormatError(
                        f"{self.directory}: mode-{mode} shards overlap in row "
                        f"order at {shard.column_paths[mode]}"
                    )
                if column.size:
                    previous_last = int(column[-1])
