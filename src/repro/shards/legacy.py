"""Reading and migrating retired version-1 shard stores.

Format v1 stored each shard as one ``(m, N)`` int64 index matrix
(``shardNNNN.indices.npy``) next to its float64 values.  Version 2 replaced
the matrix with narrow per-column files, and :meth:`ShardStore.open
<repro.shards.store.ShardStore.open>` refuses v1 directories with a
migration hint.  This module is where those hints lead:

* :class:`V1StoreReader` exposes a v1 directory through the chunked
  entry-reader protocol of :mod:`repro.tensor.io` (``shape`` +
  ``iter_entry_chunks``), streaming the mode-0 shards straight off their
  memory maps — so ``python -m repro ingest <v1-dir> --out <new>``
  re-shards old data with bounded memory.
* :func:`migrate_v1_store` rewrites a v1 directory into a v2 one
  **without re-sorting**: v1 shards are already mode-sorted with exactly
  the boundaries v2 uses, so each int64 matrix is simply split into
  narrow column files, one bounded slice at a time, and the v1
  fingerprint and segmentation arrays carry over verbatim.  This backs
  the ``shards-migrate`` CLI command.
"""

from __future__ import annotations

import json
import os
import shutil
from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..columns import check_index_dtype_policy, index_dtypes_for_shape
from ..exceptions import DataFormatError, ShapeError
from .merge import _npy_header
from .store import (
    FORMAT_NAME,
    LEGACY_FORMAT_VERSION,
    MANIFEST_NAME,
    ShardStore,
    _manifest_payload,
    _mode_dir,
    _mode_shards_json,
    _write_manifest,
)

#: Entries converted per slice during migration (bounds the RAM of one copy).
MIGRATE_BLOCK_NNZ = 262_144


def _load_v1_manifest(directory: str) -> Dict[str, object]:
    """Parse and sanity-check a version-1 manifest."""
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except FileNotFoundError:
        raise DataFormatError(
            f"{directory}: no {MANIFEST_NAME}; not a shard store"
        ) from None
    except ValueError as exc:
        raise DataFormatError(f"{path}: invalid JSON: {exc}") from exc
    if manifest.get("format") != FORMAT_NAME:
        raise DataFormatError(
            f"{directory}: not a shard store "
            f"(format={manifest.get('format')!r})"
        )
    version = int(manifest.get("version", -1))
    if version != LEGACY_FORMAT_VERSION:
        raise DataFormatError(
            f"{directory}: expected a version-{LEGACY_FORMAT_VERSION} store, "
            f"found version {version}"
        )
    return manifest


def is_v1_store(directory: str) -> bool:
    """True when ``directory`` holds a readable version-1 manifest."""
    try:
        _load_v1_manifest(os.fspath(directory))
    except DataFormatError:
        return False
    return True


class V1StoreReader:
    """Chunked entry reader over a retired version-1 shard directory.

    Streams the store's canonical (mode-0 sorted) entry sequence as
    int64/float64 chunks of at most ``chunk_nnz`` entries, reading each
    shard through its memory map — peak memory is bounded by the chunk,
    never by nnz.  Plugs straight into
    :meth:`~repro.shards.store.ShardStore.build_streaming` and the CLI
    ``ingest`` command.
    """

    def __init__(self, directory: str) -> None:
        self.directory = os.fspath(directory)
        manifest = _load_v1_manifest(self.directory)
        try:
            self.shape: Tuple[int, ...] = tuple(
                int(s) for s in manifest["shape"]
            )
            self.nnz: int = int(manifest["nnz"])
            self.shard_nnz: int = int(manifest["shard_nnz"])
            self.fingerprint: Dict[str, object] = dict(
                manifest.get("fingerprint", {})
            )
            self._mode_entries: Dict[int, List[Dict[str, object]]] = {
                int(entry["mode"]): list(entry["shards"])
                for entry in manifest["modes"]
            }
            if 0 not in self._mode_entries:
                raise KeyError("mode 0")
        except (KeyError, TypeError, ValueError) as exc:
            raise DataFormatError(
                f"{self.directory}: malformed v1 manifest: {exc}"
            ) from exc

    @property
    def order(self) -> int:
        """Number of tensor modes."""
        return len(self.shape)

    def _mode_shards(self, mode: int) -> List[Dict[str, object]]:
        try:
            return self._mode_entries[mode]
        except KeyError:
            raise DataFormatError(
                f"{self.directory}: v1 manifest lists no mode {mode}"
            ) from None

    def iter_mode_shard_arrays(
        self, mode: int
    ) -> Iterator[Tuple[Dict[str, object], np.ndarray, np.ndarray]]:
        """Yield ``(shard_json, indices_mmap, values_mmap)`` per v1 shard."""
        for shard in self._mode_shards(mode):
            try:
                indices = np.load(
                    os.path.join(self.directory, str(shard["indices"])),
                    mmap_mode="r",
                )
                values = np.load(
                    os.path.join(self.directory, str(shard["values"])),
                    mmap_mode="r",
                )
            except (OSError, ValueError, KeyError) as exc:
                raise DataFormatError(
                    f"{self.directory}: cannot map v1 shard: {exc}"
                ) from exc
            yield shard, indices, values

    def iter_entry_chunks(
        self, chunk_nnz: int = 500_000
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(indices, values)`` pairs of at most ``chunk_nnz`` entries."""
        if chunk_nnz < 1:
            raise ShapeError("chunk_nnz must be positive")
        for _, indices, values in self.iter_mode_shard_arrays(0):
            for start in range(0, values.shape[0], chunk_nnz):
                stop = start + chunk_nnz
                yield (
                    np.ascontiguousarray(indices[start:stop], dtype=np.int64),
                    np.ascontiguousarray(values[start:stop], dtype=np.float64),
                )


def migrate_v1_store(
    source_dir: str,
    target_dir: str,
    index_dtype: str = "auto",
) -> ShardStore:
    """Rewrite a version-1 store as a version-2 store, in bounded memory.

    v1 shards already hold the mode-sorted entries at exactly the
    boundaries v2 uses (both versions cut at multiples of ``shard_nnz``),
    so no sorting happens: each v1 int64 index matrix is split into narrow
    per-column files in slices of :data:`MIGRATE_BLOCK_NNZ` entries, the
    value files and segmentation arrays are copied, and the v1 fingerprint
    carries over — a follow-up :meth:`ShardStore.matches
    <repro.shards.store.ShardStore.matches>` against the original tensor
    still succeeds.  Peak memory is one slice of one shard, regardless of
    store size.  ``target_dir`` must differ from ``source_dir`` (the
    rewrite is not atomic in place).
    """
    check_index_dtype_policy(index_dtype)
    source_dir = os.fspath(source_dir)
    target_dir = os.fspath(target_dir)
    if os.path.abspath(source_dir) == os.path.abspath(target_dir):
        raise ShapeError(
            "shards-migrate writes a new directory; --out must differ from "
            "the v1 store path"
        )
    reader = V1StoreReader(source_dir)
    shape = reader.shape
    order = reader.order
    column_dtypes = index_dtypes_for_shape(shape, index_dtype)
    os.makedirs(target_dir, exist_ok=True)

    modes_json: List[Dict[str, object]] = []
    for mode in range(order):
        source_mode_dir = os.path.join(source_dir, _mode_dir(mode))
        target_mode_dir = os.path.join(target_dir, _mode_dir(mode))
        if os.path.isdir(target_mode_dir):
            shutil.rmtree(target_mode_dir)
        os.makedirs(target_mode_dir)
        for name in ("row_ids.npy", "row_starts.npy", "row_counts.npy"):
            try:
                shutil.copyfile(
                    os.path.join(source_mode_dir, name),
                    os.path.join(target_mode_dir, name),
                )
            except OSError as exc:
                raise DataFormatError(
                    f"{source_dir}: cannot read mode-{mode} segmentation: "
                    f"{exc}"
                ) from exc
        row_ids = np.load(os.path.join(target_mode_dir, "row_ids.npy"))
        row_starts = np.load(os.path.join(target_mode_dir, "row_starts.npy"))

        shards_json = _mode_shards_json(
            mode, reader.nnz, reader.shard_nnz, order, row_ids, row_starts
        )
        n_v1_shards = len(reader._mode_shards(mode))
        if n_v1_shards != len(shards_json):
            raise DataFormatError(
                f"{source_dir}: mode {mode} lists {n_v1_shards} v1 "
                f"shards where the layout implies {len(shards_json)}"
            )
        # Shards are mapped lazily, one at a time, so descriptor usage
        # stays constant no matter how many shards the store holds (the
        # generator's maps are released as each iteration completes).
        for shard_json, (v1_shard, indices_mm, values_mm) in zip(
            shards_json, reader.iter_mode_shard_arrays(mode)
        ):
            n_entries = int(shard_json["stop"]) - int(shard_json["start"])
            if indices_mm.shape != (n_entries, order):
                raise DataFormatError(
                    f"{source_dir}: v1 shard {v1_shard.get('indices')!r} has "
                    f"shape {indices_mm.shape}, expected "
                    f"({n_entries}, {order})"
                )
            for k, column_path in enumerate(shard_json["columns"]):
                target_path = os.path.join(target_dir, str(column_path))
                with open(target_path, "wb") as handle:
                    _npy_header(handle, (n_entries,), column_dtypes[k])
                    for start in range(0, n_entries, MIGRATE_BLOCK_NNZ):
                        stop = min(start + MIGRATE_BLOCK_NNZ, n_entries)
                        handle.write(
                            np.ascontiguousarray(
                                indices_mm[start:stop, k],
                                dtype=column_dtypes[k],
                            ).tobytes()
                        )
            shutil.copyfile(
                os.path.join(source_dir, str(v1_shard["values"])),
                os.path.join(target_dir, str(shard_json["values"])),
            )
        modes_json.append({"mode": mode, "shards": shards_json})

    manifest = _manifest_payload(
        shape,
        reader.nnz,
        reader.shard_nnz,
        index_dtype,
        reader.fingerprint,
        modes_json,
    )
    _write_manifest(target_dir, manifest)
    return ShardStore(target_dir, manifest)
