"""External-memory shard-store builds: spill sorted runs, k-way merge.

:func:`streaming_build` turns any chunked entry source (the protocol of
:mod:`repro.tensor.io`) into the on-disk layout of
:class:`~repro.shards.store.ShardStore` without ever materialising the
tensor.  It is the out-of-core counterpart of
:meth:`~repro.shards.store.ShardStore.build` and produces **bitwise
identical** output — same columnar shard ``.npy`` files, same segmentation
arrays, same manifest (including the SHA-256 entry fingerprint) — which
the equivalence tests assert file by file.

The classic two-phase external sort, once per mode:

1. *Spill.*  Each chunk of at most ``chunk_nnz`` entries is narrowed to
   per-mode columns (each in the smallest dtype admitting the chunk's own
   maxima — see :func:`repro.columns.index_dtype_for_max`), stably sorted
   by the mode's column in RAM and written to a *run* — per-column ``.npy``
   files under ``<dir>/.ingest-tmp/mode<n>/`` plus the sorted values and
   the entries' original positions in the input order.  Operating on the
   narrow columns directly shrinks both the spill bytes on disk and the
   peak RAM of the sort's gathers.  On multicore hosts the per-mode
   argsort + spill of one chunk runs on a small thread pool (NumPy's sort
   and the file writes release the GIL); each mode writes disjoint files,
   so the output is identical to the serial order — ``REPRO_SPILL_WORKERS=1``
   forces the serial path, which the tests pin.  Because the chunk sort is
   stable and positions within a chunk are increasing, every run is sorted
   by the compound key ``(mode index, original position)`` — the exact
   ordering of the stable ``argsort`` the in-RAM build uses.
2. *Merge.*  A heap over the run cursors pops the run with the smallest
   head key; a galloping ``searchsorted`` finds how far that run can emit
   before the next run's head key intervenes, so entries move in blocks,
   not one at a time.  Emitted blocks stream straight into the columnar
   shard ``.npy`` files (headers written up front — every shard's size is
   known from ``nnz`` and ``shard_nnz``), cast per block from the run's
   chunk-local dtype to the final per-column dtype of the store's shape,
   while the row segmentation accumulates on the fly.  When the spill
   produced more than :data:`MAX_OPEN_RUNS` runs, the merge *cascades*
   first — groups of runs are merged into longer intermediate runs until
   one pass fits — so open file descriptors stay bounded regardless of
   tensor size.

While spilling, the ingest pass also accumulates everything the manifest
fingerprint needs: the SHA-256 digest over the canonical int64 index bytes
(value bytes are streamed into the digest afterwards from the value spill,
preserving the ``indices-then-values`` digest order of
``ShardStore.build``), the integer index sum, per-mode maxima for shape
inference, and the value spill itself, whose memory-map yields the same
pairwise-summed ``values_sum`` NumPy computes over an in-RAM array.

Peak memory is O(``chunk_nnz``) plus the segmentation arrays (one entry
per distinct row id); disk usage during the build is roughly twice the
final store (runs + shards) and the runs of each mode are deleted as soon
as that mode is merged.
"""

from __future__ import annotations

import contextlib
import hashlib
import heapq
import logging
import os
import shutil
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..columns import (
    check_index_dtype_policy,
    index_dtype_for_max,
    index_dtypes_for_shape,
)
from ..exceptions import DataFormatError, ShapeError
from ..resilience.atomic import (
    atomic_save_array,
    fsync_directory,
    fsync_file,
    tmp_path_for,
)
from ..tensor.io import DEFAULT_CHUNK_NNZ
from .store import (
    DEFAULT_SHARD_NNZ,
    MANIFEST_NAME,
    _manifest_payload,
    _mode_dir,
    _mode_shards_json,
    _retire_manifest,
    _write_manifest,
)

logger = logging.getLogger(__name__)

#: Name of the scratch directory inside the target store directory.
INGEST_TMP_DIR = ".ingest-tmp"

#: Entries copied per merge emission (bounds the RAM of one emit).
MERGE_BLOCK_NNZ = 65_536

#: Runs merged simultaneously.  Every open run holds ``order + 2``
#: memory-mapped files (and their descriptors), so huge tensors — millions
#: of entries per chunk times thousands of chunks — must not map every run
#: at once; above this fan-in the merge cascades: groups of this many runs
#: are merged into longer runs first, repeating until one pass fits.
MAX_OPEN_RUNS = 128


def spill_workers() -> int:
    """Threads used for one chunk's per-mode spill sorts.

    ``REPRO_SPILL_WORKERS`` overrides (1 forces the serial path — the
    tests pin it); the default is the CPU count.  The pool is created
    lazily once the stream's order is known, capped at one thread per
    mode since one spill task exists per mode.
    """
    env = os.environ.get("REPRO_SPILL_WORKERS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def _npy_header(handle, shape: Tuple[int, ...], dtype) -> None:
    """Write the ``.npy`` header ``numpy.save`` would write for this array."""
    np.lib.format.write_array_header_1_0(
        handle,
        {
            "descr": np.lib.format.dtype_to_descr(np.dtype(dtype)),
            "fortran_order": False,
            "shape": tuple(int(s) for s in shape),
        },
    )


class _ShardSeriesWriter:
    """Streams one mode's merged entries into its columnar shard files.

    Shard boundaries depend only on ``nnz`` and ``shard_nnz``, so every
    shard's exact size is known before the first entry arrives; headers are
    written up front and raw C-order bytes appended — per column, in the
    store's final narrow dtypes — which reproduces ``numpy.save`` output
    byte for byte.
    """

    def __init__(
        self,
        directory: str,
        mode: int,
        nnz: int,
        column_dtypes: Sequence[np.dtype],
        shard_nnz: int,
    ) -> None:
        self.directory = directory
        self.mode = mode
        self.nnz = nnz
        self.column_dtypes = tuple(np.dtype(d) for d in column_dtypes)
        self.shard_nnz = shard_nnz
        self.shard_no = 0
        self.filled = 0  # entries written into the current shard
        self._column_handles: Optional[List] = None
        self._values_handle = None

    def _open_next(self) -> None:
        stem = f"shard{self.shard_no:04d}"
        size = min(self.shard_nnz, self.nnz - self.shard_no * self.shard_nnz)
        mode_dir = os.path.join(self.directory, _mode_dir(self.mode))
        # Each shard file streams into a sibling temporary and is fsynced
        # and renamed into place only when complete, so a crash mid-merge
        # never leaves a final-named file with partial contents.
        self._final_paths = [
            os.path.join(mode_dir, f"{stem}.col{k}.npy")
            for k in range(len(self.column_dtypes))
        ] + [os.path.join(mode_dir, stem + ".values.npy")]
        self._tmp_paths = [tmp_path_for(path) for path in self._final_paths]
        self._column_handles = []
        for k, dtype in enumerate(self.column_dtypes):
            handle = open(self._tmp_paths[k], "wb")
            _npy_header(handle, (size,), dtype)
            self._column_handles.append(handle)
        self._values_handle = open(self._tmp_paths[-1], "wb")
        _npy_header(self._values_handle, (size,), np.float64)
        self._capacity = size

    def _finish_shard(self) -> None:
        """Commit the completed shard: fsync, close, rename every file."""
        handles = list(self._column_handles) + [self._values_handle]
        for handle, tmp, final in zip(handles, self._tmp_paths, self._final_paths):
            fsync_file(handle)
            handle.close()
            os.replace(tmp, final)
        fsync_directory(os.path.join(self.directory, _mode_dir(self.mode)))
        self._column_handles = None
        self._values_handle = None
        self.shard_no += 1
        self.filled = 0

    def write(
        self, columns: Sequence[np.ndarray], values: np.ndarray
    ) -> None:
        """Append a merged block, cutting shard files at their boundaries."""
        offset = 0
        total = values.shape[0]
        while offset < total:
            if self._column_handles is None:
                self._open_next()
            take = min(self._capacity - self.filled, total - offset)
            piece = slice(offset, offset + take)
            for k, handle in enumerate(self._column_handles):
                handle.write(
                    np.ascontiguousarray(
                        columns[k][piece], dtype=self.column_dtypes[k]
                    ).tobytes()
                )
            self._values_handle.write(
                np.ascontiguousarray(values[piece], dtype=np.float64).tobytes()
            )
            self.filled += take
            offset += take
            if self.filled == self._capacity:
                self._finish_shard()

    def close(self) -> None:
        if self._column_handles is not None:  # pragma: no cover - defensive
            for handle in list(self._column_handles) + [self._values_handle]:
                handle.close()
            for tmp in self._tmp_paths:
                with contextlib.suppress(OSError):
                    os.remove(tmp)
            raise DataFormatError(
                f"mode {self.mode}: merge ended mid-shard "
                f"({self.filled} of {self._capacity} entries)"
            )


class _SegmentationAccumulator:
    """Row segmentation (``row_ids``/``row_starts``/``row_counts``) on the fly.

    Consumes the mode column of each merged block (sorted, possibly
    continuing the previous block's last row) and produces the same arrays
    ``numpy.unique`` yields over the full sorted column.
    """

    def __init__(self) -> None:
        self._ids: List[np.ndarray] = []
        self._counts: List[np.ndarray] = []
        self._tail_id: Optional[int] = None
        self._tail_count = 0

    def update(self, column: np.ndarray) -> None:
        if column.size == 0:
            return
        boundaries = np.flatnonzero(column[1:] != column[:-1]) + 1
        starts = np.concatenate(([0], boundaries))
        ids = column[starts]
        counts = np.diff(np.concatenate((starts, [column.size])))
        if self._tail_id is not None and int(ids[0]) == self._tail_id:
            counts[0] += self._tail_count
        elif self._tail_id is not None:
            self._ids.append(np.asarray([self._tail_id], dtype=np.int64))
            self._counts.append(np.asarray([self._tail_count], dtype=np.int64))
        self._tail_id = int(ids[-1])
        self._tail_count = int(counts[-1])
        if ids.size > 1:
            self._ids.append(ids[:-1].astype(np.int64))
            self._counts.append(counts[:-1].astype(np.int64))

    def finish(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._tail_id is not None:
            self._ids.append(np.asarray([self._tail_id], dtype=np.int64))
            self._counts.append(np.asarray([self._tail_count], dtype=np.int64))
            self._tail_id = None
        if not self._ids:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        ids = np.concatenate(self._ids)
        counts = np.concatenate(self._counts)
        starts = np.empty_like(counts)
        starts[0] = 0
        np.cumsum(counts[:-1], out=starts[1:])
        return ids, starts, counts


class _IngestState:
    """Everything the spill pass accumulates about the entry stream."""

    def __init__(
        self,
        tmp_dir: str,
        shape: Optional[Sequence[int]],
        chunk_nnz: int = MERGE_BLOCK_NNZ,
        index_dtype: str = "auto",
    ) -> None:
        self.tmp_dir = tmp_dir
        self.chunk_nnz = int(chunk_nnz)
        self.index_dtype = check_index_dtype_policy(index_dtype)
        self.declared_shape = (
            tuple(int(s) for s in shape) if shape is not None else None
        )
        self.order: Optional[int] = (
            len(self.declared_shape) if self.declared_shape else None
        )
        self.nnz = 0
        self.indices_sum = 0
        self.maxima: Optional[np.ndarray] = None
        self.digest = hashlib.sha256()
        self.run_count = 0
        self.values_spill_path = os.path.join(tmp_dir, "values.f8")
        self.max_spill_workers = 1
        self.pool: Optional[ThreadPoolExecutor] = None
        self._pool_started = False

    def spill_pool(self) -> Optional[ThreadPoolExecutor]:
        """The per-build spill pool, created once the order is known.

        Capped at one thread per mode (one spill task exists per mode);
        ``None`` — the serial path — when a single worker would result.
        """
        if not self._pool_started:
            self._pool_started = True
            n_workers = min(self.max_spill_workers, self.order or 1)
            if n_workers > 1:
                self.pool = ThreadPoolExecutor(
                    max_workers=n_workers, thread_name_prefix="repro-spill"
                )
        return self.pool

    def shape(self) -> Tuple[int, ...]:
        if self.declared_shape is not None:
            return self.declared_shape
        return tuple(int(m) + 1 for m in self.maxima)

    def column_dtypes(self) -> Tuple[np.dtype, ...]:
        """Final per-column dtypes (known once ingest has seen every entry)."""
        return index_dtypes_for_shape(self.shape(), self.index_dtype)


def _spill_chunk(
    state: _IngestState, indices: np.ndarray, values: np.ndarray
) -> None:
    """Sort one chunk per mode and write its runs (plus the value spill).

    The chunk's columns are narrowed first (each to the smallest dtype
    admitting the chunk's own maxima — the store's final shape may not be
    known yet), then each mode's stable argsort, narrow gathers and file
    writes run as one task; with more than one spill worker the per-mode
    tasks overlap on a thread pool.  A stable argsort of a narrow column
    equals the stable argsort of the int64 column value for value, so the
    runs are identical to the serial wide spill's, byte order aside.
    """
    base = state.nnz
    run = state.run_count
    if state.index_dtype == "wide":
        columns = [
            np.ascontiguousarray(indices[:, k]) for k in range(state.order)
        ]
    else:
        columns = [
            np.ascontiguousarray(
                indices[:, k],
                dtype=index_dtype_for_max(int(indices[:, k].max())),
            )
            for k in range(state.order)
        ]

    def spill_mode(mode: int) -> None:
        perm = np.argsort(columns[mode], kind="stable")
        mode_tmp = os.path.join(state.tmp_dir, _mode_dir(mode))
        stem = os.path.join(mode_tmp, f"run{run:06d}")
        for k in range(state.order):
            np.save(f"{stem}.col{k}.npy", columns[k][perm])
        np.save(stem + ".values.npy", values[perm])
        np.save(stem + ".positions.npy", base + perm)

    pool = state.spill_pool()
    if pool is not None:
        # One task per mode; modes write disjoint files, so the result is
        # independent of completion order.  list() propagates exceptions.
        list(pool.map(spill_mode, range(state.order)))
    else:
        for mode in range(state.order):
            spill_mode(mode)
    state.run_count += 1


def _ingest(state: _IngestState, source, chunk_nnz: int) -> None:
    """Spill every chunk of ``source`` and accumulate the fingerprint."""
    bound = (
        np.asarray(state.declared_shape, dtype=np.int64)
        if state.declared_shape is not None
        else None
    )
    with open(state.values_spill_path, "wb") as values_spill:
        for indices, values in source.iter_entry_chunks(chunk_nnz):
            indices = np.ascontiguousarray(indices, dtype=np.int64)
            values = np.ascontiguousarray(values, dtype=np.float64)
            if indices.ndim != 2 or values.shape != (indices.shape[0],):
                raise DataFormatError(
                    "entry source yielded inconsistent chunk shapes "
                    f"{indices.shape} / {values.shape}"
                )
            if indices.shape[0] == 0:
                continue
            if state.order is None:
                state.order = indices.shape[1]
            elif indices.shape[1] != state.order:
                raise DataFormatError(
                    f"entry source switched from order {state.order} to "
                    f"{indices.shape[1]} mid-stream"
                )
            if state.maxima is None:
                state.maxima = np.zeros(state.order, dtype=np.int64)
                for mode in range(state.order):
                    os.makedirs(
                        os.path.join(state.tmp_dir, _mode_dir(mode)),
                        exist_ok=True,
                    )
            if int(indices.min()) < 0:
                raise ShapeError("indices must be non-negative")
            if bound is not None and (indices >= bound[None, :]).any():
                raise ShapeError("an index exceeds the tensor shape")
            if not np.isfinite(values).all():
                raise ShapeError("tensor values must be finite")
            state.digest.update(indices.tobytes())
            values_spill.write(values.tobytes())
            state.indices_sum += int(indices.sum())
            np.maximum(state.maxima, indices.max(axis=0), out=state.maxima)
            _spill_chunk(state, indices, values)
            state.nnz += indices.shape[0]


def _iter_merged(runs, mode: int, merge_block: int):
    """Merge sorted runs; yield ``(columns, values, positions)`` blocks.

    ``runs`` are ``(columns, values, positions)`` triples (``columns`` a
    tuple of per-mode 1-D maps, possibly in different chunk-local narrow
    dtypes), each sorted by the compound key
    ``(columns[mode], positions)``.  A heap over the run cursors pops
    the run with the smallest head key; a galloping ``searchsorted``
    finds how far it can emit before the next run's head intervenes, so
    entries move in blocks of at most ``merge_block``.  Yielded column
    slices keep their run's dtype; the consumers cast to the final store
    dtypes as they write.
    """
    cursors = [0] * len(runs)
    heap = []
    for run_id, (columns, _, positions) in enumerate(runs):
        if columns[mode].shape[0]:
            heapq.heappush(
                heap,
                (int(columns[mode][0]), int(positions[0]), run_id),
            )
    while heap:
        _, _, run_id = heapq.heappop(heap)
        columns, values, positions = runs[run_id]
        mode_column = columns[mode]
        cursor = cursors[run_id]
        window_stop = min(mode_column.shape[0], cursor + merge_block)
        if heap:
            next_value, next_position, _ = heap[0]
            column = mode_column[cursor:window_stop]
            # Emit every entry with key strictly below the next run's head:
            # all rows below ``next_value``, plus the tied rows whose
            # original position precedes ``next_position``.
            below = int(np.searchsorted(column, next_value, side="left"))
            tie_stop = int(np.searchsorted(column, next_value, side="right"))
            ties = int(
                np.searchsorted(
                    positions[cursor + below : cursor + tie_stop],
                    next_position,
                    side="left",
                )
            )
            stop = cursor + below + ties
        else:
            stop = window_stop
        if stop == cursor:  # pragma: no cover - heap invariant guarantees > 0
            stop = cursor + 1
        yield (
            tuple(column[cursor:stop] for column in columns),
            values[cursor:stop],
            positions[cursor:stop],
        )
        cursors[run_id] = stop
        if stop < mode_column.shape[0]:
            heapq.heappush(
                heap,
                (int(mode_column[stop]), int(positions[stop]), run_id),
            )


def _open_runs(stems, order: int):
    """Memory-map the column/value/position files of each run stem."""
    return [
        (
            tuple(
                np.load(f"{stem}.col{k}.npy", mmap_mode="r")
                for k in range(order)
            ),
            np.load(stem + ".values.npy", mmap_mode="r"),
            np.load(stem + ".positions.npy", mmap_mode="r"),
        )
        for stem in stems
    ]


def _delete_run(stem: str, order: int) -> None:
    suffixes = [f".col{k}.npy" for k in range(order)]
    suffixes += [".values.npy", ".positions.npy"]
    for suffix in suffixes:
        try:
            os.remove(stem + suffix)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass


def _cascade_runs(
    state: _IngestState,
    mode: int,
    stems: List[str],
    merge_block: int,
    max_open: Optional[int] = None,
) -> List[str]:
    """Merge groups of runs into longer runs until one pass fits ``max_open``.

    Keeps at most ``max_open`` runs (``order + 2`` memory-mapped files
    each) open at a time, so descriptor usage stays bounded no matter how
    many chunks the ingest spilled; each intermediate run is itself sorted
    by the compound key and written in the store's final column dtypes, so
    later passes — and the final shard merge — stay bitwise identical to a
    flat merge.
    """
    if max_open is None:  # read at call time so tests can shrink it
        max_open = MAX_OPEN_RUNS
    final_dtypes = state.column_dtypes()
    pass_number = 0
    while len(stems) > max_open:
        merged_stems: List[str] = []
        for group_number, start in enumerate(range(0, len(stems), max_open)):
            group = stems[start : start + max_open]
            out_stem = os.path.join(
                state.tmp_dir,
                _mode_dir(mode),
                f"cascade{pass_number:02d}_{group_number:06d}",
            )
            runs = _open_runs(group, state.order)
            total = sum(run[1].shape[0] for run in runs)
            column_handles = []
            for k, dtype in enumerate(final_dtypes):
                handle = open(f"{out_stem}.col{k}.npy", "wb")
                _npy_header(handle, (total,), dtype)
                column_handles.append(handle)
            with open(out_stem + ".values.npy", "wb") as values_out, open(
                out_stem + ".positions.npy", "wb"
            ) as pos_out:
                _npy_header(values_out, (total,), np.float64)
                _npy_header(pos_out, (total,), np.int64)
                for columns, values, positions in _iter_merged(
                    runs, mode, merge_block
                ):
                    for k, handle in enumerate(column_handles):
                        handle.write(
                            np.ascontiguousarray(
                                columns[k], dtype=final_dtypes[k]
                            ).tobytes()
                        )
                    values_out.write(
                        np.ascontiguousarray(values, dtype=np.float64).tobytes()
                    )
                    pos_out.write(
                        np.ascontiguousarray(positions, dtype=np.int64).tobytes()
                    )
            for handle in column_handles:
                handle.close()
            del runs  # close the mappings before deleting their files
            for stem in group:
                _delete_run(stem, state.order)
            merged_stems.append(out_stem)
        stems = merged_stems
        pass_number += 1
    return stems


def _merge_mode(
    state: _IngestState,
    mode: int,
    directory: str,
    shard_nnz: int,
    merge_block: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """K-way merge one mode's runs into its shard files; return segmentation."""
    if merge_block is None:
        # Emissions are the merge's only nnz-independent allocations; keep
        # them within the caller's chunk budget.
        merge_block = max(1_024, min(MERGE_BLOCK_NNZ, state.chunk_nnz))
    stems = [
        os.path.join(state.tmp_dir, _mode_dir(mode), f"run{run:06d}")
        for run in range(state.run_count)
    ]
    stems = _cascade_runs(state, mode, stems, merge_block)
    runs = _open_runs(stems, state.order)
    writer = _ShardSeriesWriter(
        directory, mode, state.nnz, state.column_dtypes(), shard_nnz
    )
    segmentation = _SegmentationAccumulator()
    for block_columns, block_values, _ in _iter_merged(runs, mode, merge_block):
        writer.write(block_columns, block_values)
        segmentation.update(np.asarray(block_columns[mode]))
    writer.close()
    return segmentation.finish()


def streaming_build(
    source,
    directory: str,
    shard_nnz: int = DEFAULT_SHARD_NNZ,
    chunk_nnz: Optional[int] = None,
    shape: Optional[Sequence[int]] = None,
    index_dtype: str = "auto",
) -> Dict[str, object]:
    """Build the shard-store layout from a chunked entry source; return its manifest.

    See the module docstring for the algorithm and
    :meth:`repro.shards.ShardStore.build_streaming` for the public entry
    point.  ``shape`` (or ``source.shape``) is required only when the
    source yields no entries; otherwise it is inferred.  ``index_dtype``
    selects the column-dtype policy (``"auto"`` narrow / ``"wide"``
    int64).
    """
    if shard_nnz < 1:
        raise ShapeError("shard_nnz must be at least 1")
    check_index_dtype_policy(index_dtype)
    chunk_nnz = DEFAULT_CHUNK_NNZ if chunk_nnz is None else int(chunk_nnz)
    if chunk_nnz < 1:
        raise ShapeError("chunk_nnz must be at least 1")
    if shape is None:
        shape = getattr(source, "shape", None)
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    tmp_dir = os.path.join(directory, INGEST_TMP_DIR)
    if os.path.isdir(tmp_dir):
        # A scratch directory can only be here if a prior build died (a
        # completed build always removes it); with no manifest alongside,
        # that build never committed at all.  Either way the leftovers are
        # useless to this build — log the detection and clear them.
        if os.path.exists(os.path.join(directory, MANIFEST_NAME)):
            logger.warning(
                "%s: removing stale %s left by an interrupted build "
                "(the existing manifest predates it)",
                directory,
                INGEST_TMP_DIR,
            )
        else:
            logger.warning(
                "%s: detected an interrupted streaming build (stale %s, "
                "no manifest); cleaning it up and rebuilding from scratch",
                directory,
                INGEST_TMP_DIR,
            )
        shutil.rmtree(tmp_dir)
    # Commit-point discipline: retire any old manifest before the first
    # data file is touched, write the new one last — a crash in between
    # leaves a directory ShardStore.open refuses, never one it accepts
    # but validate() rejects.
    _retire_manifest(directory)
    os.makedirs(tmp_dir)
    state = _IngestState(tmp_dir, shape, chunk_nnz, index_dtype)
    state.max_spill_workers = spill_workers()
    try:
        _ingest(state, source, chunk_nnz)
        if state.order is None:
            raise DataFormatError(
                "entry source produced no entries and no shape; an empty "
                "store needs an explicit shape"
            )
        if state.nnz and state.maxima is None:  # pragma: no cover - defensive
            raise DataFormatError("ingest finished in an inconsistent state")

        # Fingerprint: indices were digested during the spill; values are
        # appended now, preserving ShardStore.build's digest order.  The
        # value sum runs over the spill's memory map, which NumPy reduces
        # with the same pairwise algorithm as an in-RAM array.
        if state.nnz:
            with open(state.values_spill_path, "rb") as spill:
                while True:
                    piece = spill.read(1 << 20)
                    if not piece:
                        break
                    state.digest.update(piece)
            values_map = np.memmap(
                state.values_spill_path, dtype=np.float64, mode="r"
            )
            values_sum = float(np.sum(values_map))
            del values_map
        else:
            values_sum = 0.0
        fingerprint = {
            "values_sum": values_sum,
            "indices_sum": state.indices_sum,
            "entries_sha256": state.digest.hexdigest(),
        }

        modes_json: List[Dict[str, object]] = []
        for mode in range(state.order):
            mode_dir = os.path.join(directory, _mode_dir(mode))
            if os.path.isdir(mode_dir):
                shutil.rmtree(mode_dir)
            os.makedirs(mode_dir)
            row_ids, row_starts, row_counts = _merge_mode(
                state, mode, directory, shard_nnz
            )
            atomic_save_array(os.path.join(mode_dir, "row_ids.npy"), row_ids)
            atomic_save_array(
                os.path.join(mode_dir, "row_starts.npy"), row_starts
            )
            atomic_save_array(
                os.path.join(mode_dir, "row_counts.npy"), row_counts
            )
            modes_json.append(
                {
                    "mode": mode,
                    "shards": _mode_shards_json(
                        mode,
                        state.nnz,
                        shard_nnz,
                        state.order,
                        row_ids,
                        row_starts,
                    ),
                }
            )
            # This mode's runs are merged; free their disk before the next.
            shutil.rmtree(
                os.path.join(tmp_dir, _mode_dir(mode)), ignore_errors=True
            )

        manifest = _manifest_payload(
            state.shape(),
            state.nnz,
            shard_nnz,
            index_dtype,
            fingerprint,
            modes_json,
        )
        _write_manifest(directory, manifest)
        return manifest
    finally:
        if state.pool is not None:
            state.pool.shutdown()
        shutil.rmtree(tmp_dir, ignore_errors=True)
