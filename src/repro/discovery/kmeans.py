"""From-scratch K-means clustering used for concept discovery (Section V).

The paper applies K-means to the rows of a factor matrix to group objects
(e.g. movies) into latent concepts (e.g. genres).  This implementation uses
k-means++ seeding, Lloyd iterations with an empty-cluster re-seeding rule, and
supports multiple restarts; no external clustering library is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class KMeansResult:
    """Cluster assignment produced by :func:`kmeans`.

    Attributes
    ----------
    labels:
        Cluster id of every input row.
    centroids:
        ``(n_clusters, n_features)`` centroid matrix.
    inertia:
        Sum of squared distances of rows to their assigned centroid.
    n_iterations:
        Lloyd iterations executed by the best restart.
    """

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    n_iterations: int

    def cluster_members(self, cluster: int) -> np.ndarray:
        """Row indices assigned to ``cluster``."""
        return np.nonzero(self.labels == cluster)[0]

    def cluster_sizes(self) -> np.ndarray:
        """Number of rows per cluster."""
        return np.bincount(self.labels, minlength=self.centroids.shape[0])


def _plus_plus_init(
    data: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread the initial centroids out proportionally."""
    n_rows = data.shape[0]
    centroids = np.empty((n_clusters, data.shape[1]), dtype=np.float64)
    first = int(rng.integers(0, n_rows))
    centroids[0] = data[first]
    closest_sq = np.sum((data - centroids[0]) ** 2, axis=1)
    for k in range(1, n_clusters):
        total = float(closest_sq.sum())
        if total <= 0.0:
            centroids[k:] = data[rng.integers(0, n_rows, size=n_clusters - k)]
            break
        probabilities = closest_sq / total
        choice = int(rng.choice(n_rows, p=probabilities))
        centroids[k] = data[choice]
        distance = np.sum((data - centroids[k]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, distance)
    return centroids


def _assign(data: np.ndarray, centroids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Nearest-centroid label and squared distance for every row."""
    distances = (
        np.sum(data * data, axis=1)[:, None]
        - 2.0 * data @ centroids.T
        + np.sum(centroids * centroids, axis=1)[None, :]
    )
    labels = np.argmin(distances, axis=1)
    best = distances[np.arange(data.shape[0]), labels]
    return labels, np.maximum(best, 0.0)


def kmeans(
    data: np.ndarray,
    n_clusters: int,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    n_restarts: int = 4,
    seed: Optional[int] = 0,
) -> KMeansResult:
    """Cluster the rows of ``data`` into ``n_clusters`` groups.

    Runs ``n_restarts`` independent k-means++ initialisations and returns the
    solution with the lowest inertia.  Clusters that become empty are
    re-seeded with the row farthest from its centroid.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError("data must be a 2-D array of row vectors")
    n_rows = data.shape[0]
    if n_clusters < 1:
        raise ValueError("n_clusters must be at least 1")
    if n_clusters > n_rows:
        raise ValueError(
            f"cannot build {n_clusters} clusters from {n_rows} rows"
        )
    rng = np.random.default_rng(seed)

    best: Optional[KMeansResult] = None
    for _ in range(max(1, n_restarts)):
        centroids = _plus_plus_init(data, n_clusters, rng)
        labels = np.zeros(n_rows, dtype=np.int64)
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            labels, distances = _assign(data, centroids)
            new_centroids = centroids.copy()
            for k in range(n_clusters):
                members = labels == k
                if np.any(members):
                    new_centroids[k] = data[members].mean(axis=0)
                else:
                    new_centroids[k] = data[int(np.argmax(distances))]
            shift = float(np.max(np.abs(new_centroids - centroids)))
            centroids = new_centroids
            if shift < tolerance:
                break
        labels, distances = _assign(data, centroids)
        inertia = float(distances.sum())
        candidate = KMeansResult(
            labels=labels, centroids=centroids, inertia=inertia, n_iterations=iterations
        )
        if best is None or candidate.inertia < best.inertia:
            best = candidate
    assert best is not None
    return best


def cluster_purity(labels: np.ndarray, ground_truth: np.ndarray) -> float:
    """Fraction of rows whose cluster's majority ground-truth class matches theirs.

    Used by the discovery tests to check that K-means on factor rows recovers
    the planted genre structure.
    """
    labels = np.asarray(labels)
    ground_truth = np.asarray(ground_truth)
    if labels.shape != ground_truth.shape:
        raise ValueError("labels and ground_truth must be aligned")
    total_correct = 0
    for cluster in np.unique(labels):
        members = ground_truth[labels == cluster]
        if members.size == 0:
            continue
        counts = np.bincount(members)
        total_correct += int(counts.max())
    return total_correct / labels.shape[0] if labels.shape[0] else 1.0
