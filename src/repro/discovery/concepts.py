"""Concept discovery from factor matrices (Section V, Table V).

Each row of a factor matrix is the latent feature vector of one object of the
corresponding mode (a movie, a user, ...).  Clustering those rows groups
objects into latent *concepts*; inspecting the members of each cluster — as
Table V does with movie titles and genres — reveals what the concept is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.result import TuckerResult
from .kmeans import KMeansResult, kmeans


@dataclass(frozen=True)
class Concept:
    """One discovered concept: a cluster of objects in a mode."""

    concept_id: int
    mode: int
    member_indices: np.ndarray
    representative_indices: np.ndarray
    centroid: np.ndarray

    @property
    def size(self) -> int:
        return int(self.member_indices.shape[0])

    def describe(self, labels: Optional[Sequence[str]] = None, top: int = 5) -> str:
        """Human-readable description listing the most representative members."""
        shown = self.representative_indices[:top]
        if labels is not None:
            names = ", ".join(str(labels[int(i)]) for i in shown)
        else:
            names = ", ".join(str(int(i)) for i in shown)
        return f"Concept {self.concept_id} (size {self.size}): {names}"


@dataclass(frozen=True)
class ConceptDiscovery:
    """All concepts found in one mode plus the underlying clustering."""

    mode: int
    concepts: List[Concept]
    clustering: KMeansResult

    def concept_of(self, index: int) -> int:
        """Concept id of one object."""
        return int(self.clustering.labels[index])

    def as_table(
        self, labels: Optional[Sequence[str]] = None, top: int = 3
    ) -> List[Dict[str, object]]:
        """Rows shaped like Table V: concept id, member index, member label."""
        rows: List[Dict[str, object]] = []
        for concept in self.concepts:
            for index in concept.representative_indices[:top]:
                rows.append(
                    {
                        "concept": concept.concept_id,
                        "index": int(index),
                        "attribute": (
                            str(labels[int(index)]) if labels is not None else str(int(index))
                        ),
                    }
                )
        return rows


def discover_concepts(
    result: TuckerResult,
    mode: int,
    n_concepts: int,
    seed: Optional[int] = 0,
    n_representatives: int = 10,
) -> ConceptDiscovery:
    """Cluster the rows of one factor matrix into latent concepts.

    Representatives of each concept are the members closest to the cluster
    centroid (the clearest examples of the concept), mirroring how Table V
    lists the most characteristic movies of each discovered genre.
    """
    factor = np.asarray(result.factor(mode), dtype=np.float64)
    clustering = kmeans(factor, n_concepts, seed=seed)
    concepts: List[Concept] = []
    for concept_id in range(n_concepts):
        members = clustering.cluster_members(concept_id)
        if members.size:
            distances = np.linalg.norm(
                factor[members] - clustering.centroids[concept_id][None, :], axis=1
            )
            representatives = members[np.argsort(distances)][:n_representatives]
        else:
            representatives = members
        concepts.append(
            Concept(
                concept_id=concept_id,
                mode=mode,
                member_indices=members,
                representative_indices=representatives,
                centroid=clustering.centroids[concept_id],
            )
        )
    return ConceptDiscovery(mode=mode, concepts=concepts, clustering=clustering)


def concept_alignment(
    discovery: ConceptDiscovery, ground_truth: Sequence[int]
) -> float:
    """Purity of the discovered concepts against planted ground-truth classes."""
    from .kmeans import cluster_purity

    return cluster_purity(discovery.clustering.labels, np.asarray(ground_truth))
