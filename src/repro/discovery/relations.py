"""Relation discovery from the core tensor (Section V, Table VI).

An entry (j_1, ..., j_N) of the core tensor G weights the relation between
column j_1 of A^(1), column j_2 of A^(2), and so on; a large |G| value marks a
strong relation between those latent components.  Following the paper, a
relation is reported by taking the top core entries by magnitude and, for each
involved mode, the original indices that load most heavily on the selected
column — e.g. the hours and years most associated with a genre component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.result import TuckerResult


@dataclass(frozen=True)
class Relation:
    """One discovered relation: a strong core entry plus its top attributes."""

    rank: int
    core_index: Tuple[int, ...]
    strength: float
    top_attributes: Dict[int, np.ndarray]

    def describe(
        self,
        mode_names: Optional[Sequence[str]] = None,
        attribute_labels: Optional[Dict[int, Sequence[str]]] = None,
        top: int = 3,
    ) -> str:
        """Human-readable summary like Table VI's "Details" column."""
        parts: List[str] = []
        for mode, attributes in self.top_attributes.items():
            name = mode_names[mode] if mode_names is not None else f"mode{mode}"
            labels = attribute_labels.get(mode) if attribute_labels else None
            shown = attributes[:top]
            values = ", ".join(
                str(labels[int(a)]) if labels is not None else str(int(a)) for a in shown
            )
            parts.append(f"{name}: [{values}]")
        return (
            f"Relation #{self.rank} (|G|={abs(self.strength):.3g}, "
            f"core={self.core_index}) " + "; ".join(parts)
        )


def discover_relations(
    result: TuckerResult,
    n_relations: int = 3,
    modes: Optional[Sequence[int]] = None,
    n_attributes: int = 5,
) -> List[Relation]:
    """Find the strongest relations encoded in the core tensor.

    Parameters
    ----------
    result:
        A fitted Tucker model.
    n_relations:
        How many top core entries (by absolute value) to report.
    modes:
        Which modes to describe for each relation; defaults to all modes.
    n_attributes:
        How many original indices to list per mode, ranked by their loading
        on the relation's column of that mode's factor matrix.
    """
    core = np.asarray(result.core)
    modes = list(range(core.ndim)) if modes is None else [int(m) for m in modes]
    flat = np.abs(core).reshape(-1)
    n_relations = int(min(n_relations, flat.size))
    top_positions = np.argsort(-flat, kind="stable")[:n_relations]

    relations: List[Relation] = []
    for rank, position in enumerate(top_positions, start=1):
        core_index = tuple(int(i) for i in np.unravel_index(position, core.shape))
        top_attributes: Dict[int, np.ndarray] = {}
        for mode in modes:
            column = np.asarray(result.factor(mode))[:, core_index[mode]]
            top_attributes[mode] = np.argsort(-np.abs(column), kind="stable")[
                :n_attributes
            ]
        relations.append(
            Relation(
                rank=rank,
                core_index=core_index,
                strength=float(core[core_index]),
                top_attributes=top_attributes,
            )
        )
    return relations


def relation_table(
    relations: Sequence[Relation],
    mode_names: Optional[Sequence[str]] = None,
    attribute_labels: Optional[Dict[int, Sequence[str]]] = None,
) -> List[Dict[str, object]]:
    """Rows shaped like Table VI: relation rank, |G| value and details."""
    return [
        {
            "relation": relation.rank,
            "g_value": abs(relation.strength),
            "details": relation.describe(mode_names, attribute_labels),
        }
        for relation in relations
    ]
