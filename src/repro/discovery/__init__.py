"""Concept and relation discovery on Tucker factorization results."""

from .concepts import Concept, ConceptDiscovery, concept_alignment, discover_concepts
from .kmeans import KMeansResult, cluster_purity, kmeans
from .relations import Relation, discover_relations, relation_table

__all__ = [
    "kmeans",
    "KMeansResult",
    "cluster_purity",
    "Concept",
    "ConceptDiscovery",
    "discover_concepts",
    "concept_alignment",
    "Relation",
    "discover_relations",
    "relation_table",
]
